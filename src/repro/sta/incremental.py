"""Incremental static timing analysis after cell moves.

The ICCAD 2015 contest the paper evaluates on is *incremental*
timing-driven placement: a few cells move, and timing must be refreshed
without re-analysing the whole design (the TAU 2015 setting of the paper's
reference [30]).  :class:`IncrementalTimer` keeps the full late/setup
timing state and, per move:

1. re-routes only the nets touching moved cells and replays their Elmore
   passes (a mini-forest of just those trees);
2. seeds a dirty set with the affected sink pins and driver pins (whose
   cell-arc delays depend on the changed load);
3. sweeps the affected cone level by level, recomputing each dirty pin
   from *all* of its fan-ins and early-terminating when a pin's arrival
   time and slew settle;
4. refreshes the slacks of affected endpoints and the running WNS/TNS.

Moves are symmetric: to reject a trial move, move the cells back - the
incremental update restores the previous state exactly (asserted in the
test-suite).  This engine powers the timing-driven detailed placer in
:mod:`repro.place.detailed`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..netlist.design import Design
from ..netlist.library import FALL, RISE
from ..route.rsmt import build_rsmt
from ..route.tree import Forest, RoutingTree
from .analysis import StaticTimingAnalyzer
from .elmore import elmore_forward, node_caps
from .graph import TimingGraph

__all__ = ["IncrementalTimer"]

_EPS = 1e-9


class IncrementalTimer:
    """Maintains setup timing under incremental cell movement."""

    def __init__(
        self,
        design: Design,
        graph: Optional[TimingGraph] = None,
        max_steiner_degree: int = 24,
    ) -> None:
        self.design = design
        self.graph = graph if graph is not None else TimingGraph(design)
        self.max_steiner_degree = max_steiner_degree
        g = self.graph
        n_pins = design.n_pins

        # Fan-in structures: one net arc per sink pin; contributions
        # grouped by their destination pin.
        self.fanin_net_src = np.full(n_pins, -1, dtype=np.int64)
        self.fanin_net_src[g.net_sink] = g.net_src
        order = np.argsort(g.c_dst, kind="stable")
        self._c_order = order
        counts = np.bincount(g.c_dst, minlength=n_pins)
        self._c_start = np.zeros(n_pins + 1, dtype=np.int64)
        np.cumsum(counts, out=self._c_start[1:])

        # Fan-out adjacency over unique (src, dst) propagation edges.
        edges_src = np.concatenate([g.net_src, g.c_src])
        edges_dst = np.concatenate([g.net_sink, g.c_dst])
        if len(edges_src):
            pairs = np.unique(np.stack([edges_src, edges_dst], axis=1), axis=0)
            edges_src, edges_dst = pairs[:, 0], pairs[:, 1]
        out_order = np.argsort(edges_src, kind="stable")
        self._out_dst = edges_dst[out_order]
        counts = np.bincount(edges_src, minlength=n_pins)
        self._out_start = np.zeros(n_pins + 1, dtype=np.int64)
        np.cumsum(counts, out=self._out_start[1:])

        # Pins of each cell (CSR), endpoint bookkeeping.
        cell_order = np.argsort(design.pin2cell, kind="stable")
        self._cell_pins = cell_order
        counts = np.bincount(design.pin2cell, minlength=design.n_cells)
        self._cell_pin_start = np.zeros(design.n_cells + 1, dtype=np.int64)
        np.cumsum(counts, out=self._cell_pin_start[1:])

        self._endpoint_index = {
            int(p): k for k, p in enumerate(g.endpoint_pins)
        }
        self._setup_index = {int(p): k for k, p in enumerate(g.setup_d)}

        self._sta = StaticTimingAnalyzer(design, self.graph)
        self.x: np.ndarray
        self.y: np.ndarray
        self.trees: List[Optional[RoutingTree]]
        self.n_incremental_updates = 0
        self.n_pins_recomputed = 0

    # ------------------------------------------------------------------
    def reset(
        self,
        cell_x: Optional[np.ndarray] = None,
        cell_y: Optional[np.ndarray] = None,
    ) -> None:
        """Full analysis at the given placement; establishes the baseline."""
        design = self.design
        self.x = (design.cell_x if cell_x is None else cell_x).astype(float).copy()
        self.y = (design.cell_y if cell_y is None else cell_y).astype(float).copy()
        result = self._sta.run(self.x, self.y)
        self.at = result.at.copy()
        self.slew = result.slew.copy()
        self.net_delay = result.net_delay.copy()
        self.impulse2 = result.impulse**2
        self.driver_load = result.driver_load.copy()
        self.trees = list(result.forest.trees)
        self.ep_slack = result.endpoint_slack.copy()
        self._refresh_totals()

    def _refresh_totals(self) -> None:
        finite = self.ep_slack < 1e29
        if np.any(finite):
            self.wns = float(self.ep_slack[finite].min())
            self.tns = float(np.minimum(self.ep_slack[finite], 0.0).sum())
        else:
            self.wns = 0.0
            self.tns = 0.0

    # ------------------------------------------------------------------
    # Elmore refresh for a set of nets
    # ------------------------------------------------------------------
    def _reroute_nets(self, nets: Sequence[int]) -> Set[int]:
        """Rebuild trees + Elmore values for nets; returns affected pins."""
        design = self.design
        px, py = design.pin_positions(self.x, self.y)
        affected: Set[int] = set()
        rebuilt: List[RoutingTree] = []
        for ni in nets:
            pins = design.net_pins(ni)
            driver = design.net_driver[ni]
            if (
                len(pins) < 2
                or driver < 0
                or design.net_is_clock[ni]
            ):
                continue
            driver_local = int(np.nonzero(pins == driver)[0][0])
            tree = build_rsmt(
                px[pins],
                py[pins],
                pins,
                driver_local=driver_local,
                max_steiner_degree=self.max_steiner_degree,
            )
            self.trees[ni] = tree
            rebuilt.append(tree)
            affected.update(int(p) for p in pins)
        if not rebuilt:
            return affected
        mini = Forest(rebuilt, design.n_pins)
        nx, ny = mini.node_coords(px, py)
        caps = node_caps(mini, design.pin_cap, self.graph.extra_pin_cap)
        elm = elmore_forward(mini, nx, ny, caps, design.library.wire)
        mask = mini.node_pin >= 0
        pins = mini.node_pin[mask]
        self.net_delay[pins] = elm.delay[mask]
        self.impulse2[pins] = np.maximum(
            2.0 * elm.beta[mask] - elm.delay[mask] ** 2, 0.0
        )
        roots = np.nonzero(mini.is_root)[0]
        self.driver_load[mini.node_pin[roots]] = elm.load[roots]
        return affected

    # ------------------------------------------------------------------
    # Single-pin recompute (late mode, exact max merge)
    # ------------------------------------------------------------------
    def _recompute_pin(self, p: int) -> Tuple[np.ndarray, np.ndarray]:
        g = self.graph
        src = self.fanin_net_src[p]
        if src >= 0:
            at = self.at[src] + self.net_delay[p]
            slew = np.sqrt(self.slew[src] ** 2 + self.impulse2[p])
            return at, slew
        sl = slice(self._c_start[p], self._c_start[p + 1])
        idx = self._c_order[sl]
        if len(idx) == 0:
            return self.at[p].copy(), self.slew[p].copy()  # start point
        c_src = g.c_src[idx]
        c_tin = g.c_tin[idx]
        c_tout = g.c_tout[idx]
        slew_in = np.clip(self.slew[c_src, c_tin], 0.0, 1e6)
        load = np.full(len(idx), self.driver_load[p])
        delay = g.lutbank.lookup(g.c_lut_delay[idx], slew_in, load)
        out_slew = g.lutbank.lookup(g.c_lut_slew[idx], slew_in, load)
        at_cand = self.at[c_src, c_tin] + delay
        at = np.full(2, -1e30)
        slew = np.zeros(2)
        for t in (RISE, FALL):
            m = c_tout == t
            if np.any(m):
                at[t] = at_cand[m].max()
                slew[t] = out_slew[m].max()
        return at, slew

    def _endpoint_slack(self, p: int) -> float:
        g = self.graph
        period = self.design.constraints.clock_period
        if p in self._setup_index:
            k = self._setup_index[p]
            slacks = np.empty(2)
            for t in (RISE, FALL):
                setup_time = g.lutbank.lookup(
                    np.array([g.setup_lut[k, t]]),
                    np.array([np.clip(self.slew[p, t], 0.0, 1e6)]),
                    np.array([g.clock_slew]),
                )[0]
                slacks[t] = (period - setup_time) - self.at[p, t]
            return float(slacks.min())
        # Output port endpoint.
        which = np.nonzero(g.po_pins == p)[0][0]
        rat = period - g.po_output_delay[which]
        return float((rat - self.at[p]).min())

    # ------------------------------------------------------------------
    def move(
        self,
        cells: Iterable[int],
        new_x: Iterable[float],
        new_y: Iterable[float],
    ) -> Tuple[float, float]:
        """Move cells and incrementally refresh timing; returns (WNS, TNS)."""
        design = self.design
        g = self.graph
        cells = list(cells)
        for ci, nx_, ny_ in zip(cells, new_x, new_y):
            self.x[ci] = nx_
            self.y[ci] = ny_
        self.n_incremental_updates += 1

        # Nets touching any moved cell.
        nets: Set[int] = set()
        for ci in cells:
            sl = slice(self._cell_pin_start[ci], self._cell_pin_start[ci + 1])
            for p in self._cell_pins[sl]:
                ni = design.pin2net[p]
                if ni >= 0:
                    nets.add(int(ni))
        affected_pins = self._reroute_nets(sorted(nets))

        # Dirty pins: sinks of changed nets (net-arc values changed) and
        # drivers of changed nets (their input cell arcs see a new load).
        dirty: Set[int] = set()
        for ni in nets:
            if design.net_is_clock[ni]:
                continue
            driver = design.net_driver[ni]
            for p in design.net_pins(ni):
                dirty.add(int(p))
            if driver >= 0:
                dirty.add(int(driver))

        # Level-ordered worklist sweep over the affected cone.
        levels_of = g.level
        worklist: Dict[int, Set[int]] = {}
        for p in dirty:
            worklist.setdefault(int(levels_of[p]), set()).add(p)
        touched_endpoints: Set[int] = set()
        while worklist:
            level = min(worklist)
            pins = worklist.pop(level)
            for p in sorted(pins):
                self.n_pins_recomputed += 1
                at, slew = self._recompute_pin(p)
                changed = (
                    np.abs(at - self.at[p]).max() > _EPS
                    or np.abs(slew - self.slew[p]).max() > _EPS
                )
                if p in self._endpoint_index:
                    touched_endpoints.add(p)
                if not changed:
                    continue
                self.at[p] = at
                self.slew[p] = slew
                for k in range(self._out_start[p], self._out_start[p + 1]):
                    q = int(self._out_dst[k])
                    worklist.setdefault(int(levels_of[q]), set()).add(q)

        for p in touched_endpoints:
            self.ep_slack[self._endpoint_index[p]] = self._endpoint_slack(p)
        self._refresh_totals()
        return self.wns, self.tns

    # ------------------------------------------------------------------
    def verify(self, rtol: float = 1e-6, atol: float = 1e-6) -> bool:
        """Cross-check the incremental state against a full re-analysis.

        Note: the full analysis re-routes every net from scratch, so trees
        of *unmoved* nets must coincide; this holds because RSMT
        construction is deterministic in the pin coordinates.
        """
        result = self._sta.run(self.x, self.y)
        return bool(
            np.allclose(self.ep_slack, result.endpoint_slack, rtol=rtol, atol=atol)
            and abs(self.wns - result.wns_setup) <= atol + rtol * abs(result.wns_setup)
        )
