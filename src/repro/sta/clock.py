"""Propagated-clock modelling (non-ideal clock networks).

The paper's evaluation - like ours by default - assumes an ideal clock
(zero insertion delay and skew).  This module removes that idealisation
for the golden STA: the clock net is routed like any signal net and its
Elmore delay/impulse give every flip-flop CK pin a real arrival time and
slew.  Launch paths start later (CK->Q launches from the insertion delay)
and capture checks move with the local clock arrival, so *skew* - useful
or harmful - becomes visible in the setup/hold slacks:

    slack_setup(D) = (T + at_ck(capture FF)) - setup(slew_D, slew_ck) - at(D)
    slack_hold(D)  = at_early(D) - at_ck(capture FF) - hold(slew_D, slew_ck)

Enable with ``StaticTimingAnalyzer.run(..., propagated_clock=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..netlist.design import Design
from ..route.rsmt import build_rsmt
from ..route.tree import Forest
from .elmore import elmore_forward, node_caps
from .graph import TimingGraph

__all__ = ["ClockArrival", "propagate_clock"]


@dataclass
class ClockArrival:
    """Per-pin clock arrival times and slews (zero off the clock tree)."""

    at: np.ndarray  # (n_pins,) insertion delay at clock sinks
    slew: np.ndarray  # (n_pins,) clock slew at clock sinks
    is_clock_sink: np.ndarray  # (n_pins,) bool
    skew: float  # max - min arrival over clock sinks

    def arrival(self, pin: int) -> float:
        return float(self.at[pin])


def propagate_clock(
    design: Design,
    graph: TimingGraph,
    cell_x: Optional[np.ndarray] = None,
    cell_y: Optional[np.ndarray] = None,
) -> ClockArrival:
    """Route the clock net(s) and compute sink arrival times and slews."""
    x = design.cell_x if cell_x is None else cell_x
    y = design.cell_y if cell_y is None else cell_y
    px, py = design.pin_positions(x, y)

    n_pins = design.n_pins
    at = np.zeros(n_pins)
    slew = np.full(n_pins, design.library.default_input_slew)
    is_sink = np.zeros(n_pins, dtype=bool)
    source_slew = design.constraints.input_slew(design.constraints.clock_port)

    trees = []
    for ni in np.nonzero(design.net_is_clock)[0]:
        pins = design.net_pins(int(ni))
        driver = design.net_driver[int(ni)]
        if len(pins) < 2 or driver < 0:
            continue
        driver_local = int(np.nonzero(pins == driver)[0][0])
        trees.append(
            build_rsmt(px[pins], py[pins], pins, driver_local=driver_local)
        )
    if trees:
        forest = Forest(trees, n_pins)
        nx, ny = forest.node_coords(px, py)
        caps = node_caps(forest, design.pin_cap, graph.extra_pin_cap)
        elm = elmore_forward(forest, nx, ny, caps, design.library.wire)
        mask = forest.node_pin >= 0
        pins = forest.node_pin[mask]
        at[pins] = elm.delay[mask]
        impulse2 = np.maximum(
            2.0 * elm.beta[mask] - elm.delay[mask] ** 2, 0.0
        )
        slew[pins] = np.sqrt(source_slew**2 + impulse2)
        is_sink[pins] = True
        # The driver (clock port) itself is not a sink.
        roots = forest.node_pin[np.nonzero(forest.is_root)[0]]
        is_sink[roots[roots >= 0]] = False

    sink_at = at[is_sink]
    skew = float(sink_at.max() - sink_at.min()) if len(sink_at) else 0.0
    return ClockArrival(at=at, slew=slew, is_clock_sink=is_sink, skew=skew)
