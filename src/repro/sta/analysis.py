"""Golden (exact) static timing analysis.

This is the evaluation timer of the reproduction: a levelised STA engine
with exact ``max``/``min`` arrival-time reductions, the Elmore wire model of
:mod:`repro.sta.elmore` and NLDM LUT cell delays.  It computes late/early
arrival times and slews per transition, required arrival times, slacks, and
setup/hold WNS/TNS as defined in Equations (1)-(2) of the paper.

The differentiable timer (:mod:`repro.core`) shares this module's graph and
LUT infrastructure but replaces the hard reductions by Log-Sum-Exp; the
test-suite asserts that as the smoothing factor shrinks the two agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..netlist.design import Design
from ..netlist.library import FALL, RISE
from ..route.rsmt import build_forest
from ..route.tree import Forest
from .elmore import (
    WIRE_DELAY_MODELS,
    ElmoreResult,
    d2m_delay,
    elmore_forward,
    node_caps,
)
from .clock import ClockArrival, propagate_clock
from .graph import TimingGraph

__all__ = ["STAResult", "StaticTimingAnalyzer", "run_sta"]

_NEG_INF = -1e30
_POS_INF = 1e30


@dataclass
class STAResult:
    """Complete output of one STA run.

    Arrays indexed ``[pin, transition]`` unless noted.  ``slack`` is the
    late/setup slack ``rat - at``; early/hold results are present when the
    analyzer ran with ``compute_hold=True``.
    """

    at: np.ndarray
    slew: np.ndarray
    rat: np.ndarray
    slack: np.ndarray
    endpoint_slack: np.ndarray  # per endpoint, min over transitions
    wns_setup: float
    tns_setup: float
    at_early: Optional[np.ndarray]
    slew_early: Optional[np.ndarray]
    hold_slack: Optional[np.ndarray]  # per hold check, min over transitions
    wns_hold: float
    tns_hold: float
    net_delay: np.ndarray  # per pin: Elmore delay at net sinks
    impulse: np.ndarray  # per pin: Elmore impulse at net sinks
    driver_load: np.ndarray  # per pin: net load at drivers
    elmore: ElmoreResult
    forest: Forest
    graph: TimingGraph
    clock: Optional[ClockArrival] = None

    def net_worst_slack(self) -> np.ndarray:
        """Worst setup slack per net (over the net's pins).

        Unrouted nets (clock/degree-1) report ``+inf``.  This is the
        criticality signal consumed by the net-weighting baseline.
        """
        design = self.graph.design
        pin_slack = self.slack.min(axis=1)
        out = np.full(design.n_nets, _POS_INF)
        for ni in self.graph.timing_nets:
            out[ni] = float(pin_slack[design.net_pins(ni)].min())
        return out


class StaticTimingAnalyzer:
    """Levelised exact STA over a :class:`Design`.

    The timing graph is built once (pin levels are placement-independent);
    each :meth:`run` re-routes (or reuses) the Steiner forest, replays the
    Elmore passes, and propagates arrival times.
    """

    def __init__(
        self,
        design: Design,
        graph: Optional[TimingGraph] = None,
        wire_delay_model: str = "elmore",
    ) -> None:
        self.design = design
        self.graph = graph if graph is not None else TimingGraph(design)
        if wire_delay_model not in WIRE_DELAY_MODELS:
            raise ValueError(
                f"unknown wire delay model {wire_delay_model!r}; "
                f"expected one of {WIRE_DELAY_MODELS}"
            )
        self.wire_delay_model = wire_delay_model

    # ------------------------------------------------------------------
    def _elmore(
        self,
        forest: Forest,
        cell_x: np.ndarray,
        cell_y: np.ndarray,
    ) -> ElmoreResult:
        design = self.design
        px, py = design.pin_positions(cell_x, cell_y)
        nx, ny = forest.node_coords(px, py)
        caps = node_caps(forest, design.pin_cap, self.graph.extra_pin_cap)
        return elmore_forward(forest, nx, ny, caps, design.library.wire)

    def _per_pin_elmore(self, forest: Forest, elmore: ElmoreResult):
        n_pins = self.design.n_pins
        net_delay = np.zeros(n_pins)
        impulse = np.zeros(n_pins)
        mask = forest.node_pin >= 0
        pins = forest.node_pin[mask]
        if self.wire_delay_model == "d2m":
            net_delay[pins] = d2m_delay(elmore.delay[mask], elmore.beta[mask])
        else:
            net_delay[pins] = elmore.delay[mask]
        impulse[pins] = elmore.impulse[mask]
        driver_load = elmore.root_load(forest, n_pins)
        return net_delay, impulse, driver_load

    # ------------------------------------------------------------------
    def run(
        self,
        cell_x: Optional[np.ndarray] = None,
        cell_y: Optional[np.ndarray] = None,
        forest: Optional[Forest] = None,
        compute_hold: bool = False,
        propagated_clock: bool = False,
    ) -> STAResult:
        """Run full STA at the given (default: stored) cell locations.

        With ``propagated_clock=True`` the clock net is routed and its
        Elmore insertion delays/slews drive the launch arrivals at FF CK
        pins and shift the capture edge of every setup/hold check (see
        :mod:`repro.sta.clock`); the default is the paper's ideal clock.
        """
        design = self.design
        graph = self.graph
        x = design.cell_x if cell_x is None else cell_x
        y = design.cell_y if cell_y is None else cell_y
        if forest is None:
            forest = build_forest(design, x, y)
        elmore = self._elmore(forest, x, y)
        net_delay, impulse, driver_load = self._per_pin_elmore(forest, elmore)

        clock = None
        start_at = start_slew = None
        if propagated_clock:
            clock = propagate_clock(design, graph, x, y)
            start_at = graph.start_at.copy()
            start_slew = graph.start_slew.copy()
            sinks = clock.is_clock_sink
            start_at[sinks] = clock.at[sinks, None]
            start_slew[sinks] = clock.slew[sinks, None]

        at, slew = self._propagate(
            graph, net_delay, impulse, driver_load, late=True,
            start_at=start_at, start_slew=start_slew,
        )
        rat = self._required_times(
            graph, at, slew, net_delay, driver_load, clock=clock
        )
        slack = rat - at
        ep = graph.endpoint_pins
        endpoint_slack = slack[ep].min(axis=1) if len(ep) else np.zeros(0)
        finite = endpoint_slack < _POS_INF / 2
        if np.any(finite):
            wns = float(endpoint_slack[finite].min())
            tns = float(np.minimum(endpoint_slack[finite], 0.0).sum())
        else:
            wns, tns = 0.0, 0.0

        at_early = slew_early = hold_slack = None
        wns_hold = tns_hold = 0.0
        if compute_hold and len(graph.hold_d):
            at_early, slew_early = self._propagate(
                graph, net_delay, impulse, driver_load, late=False,
                start_at=start_at, start_slew=start_slew,
            )
            if clock is not None:
                ck_at = clock.at[graph.hold_ck]
                ck_slew = clock.slew[graph.hold_ck]
            else:
                ck_at = np.zeros(len(graph.hold_d))
                ck_slew = np.full(len(graph.hold_d), graph.clock_slew)
            hold_slacks = np.empty((len(graph.hold_d), 2))
            for t in (RISE, FALL):
                hold_time = graph.lutbank.lookup(
                    graph.hold_lut[:, t],
                    slew_early[graph.hold_d, t],
                    ck_slew,
                )
                hold_slacks[:, t] = (
                    at_early[graph.hold_d, t] - ck_at - hold_time
                )
            hold_slack = hold_slacks.min(axis=1)
            wns_hold = float(hold_slack.min())
            tns_hold = float(np.minimum(hold_slack, 0.0).sum())

        return STAResult(
            at=at,
            slew=slew,
            rat=rat,
            slack=slack,
            endpoint_slack=endpoint_slack,
            wns_setup=wns,
            tns_setup=tns,
            at_early=at_early,
            slew_early=slew_early,
            hold_slack=hold_slack,
            wns_hold=wns_hold,
            tns_hold=tns_hold,
            net_delay=net_delay,
            impulse=impulse,
            driver_load=driver_load,
            elmore=elmore,
            forest=forest,
            graph=graph,
            clock=clock,
        )

    # ------------------------------------------------------------------
    def _propagate(
        self, graph, net_delay, impulse, driver_load, late: bool,
        start_at=None, start_slew=None,
    ):
        """Levelised AT/slew propagation (late = max merge, early = min)."""
        n_pins = self.design.n_pins
        at = np.full((n_pins, 2), _NEG_INF if late else _POS_INF)
        slew = np.zeros((n_pins, 2)) if late else np.full((n_pins, 2), _POS_INF)
        sp = graph.start_pins
        src_at = graph.start_at if start_at is None else start_at
        src_slew = graph.start_slew if start_slew is None else start_slew
        at[sp] = src_at[sp]
        slew[sp] = src_slew[sp]

        reduce_at = np.maximum.at if late else np.minimum.at
        at_flat = at.reshape(-1)
        slew_flat = slew.reshape(-1)
        for level in range(1, graph.n_levels):
            sl = graph.net_arcs.level_slice(level)
            if sl.stop > sl.start:
                sinks = graph.net_sink[sl]
                srcs = graph.net_src[sl]
                at[sinks] = at[srcs] + net_delay[sinks][:, None]
                slew[sinks] = np.sqrt(
                    slew[srcs] ** 2 + impulse[sinks][:, None] ** 2
                )
            sl = graph.cell_arcs.level_slice(level)
            if sl.stop > sl.start:
                src = graph.c_src[sl]
                dst = graph.c_dst[sl]
                tin = graph.c_tin[sl]
                tout = graph.c_tout[sl]
                slew_in = slew[src, tin]
                load_out = driver_load[dst]
                # Unreached fan-ins carry sentinel slews; clamp the LUT
                # query (their AT sentinel still dominates the merge).
                slew_q = np.clip(slew_in, 0.0, 1e6)
                delay = graph.lutbank.lookup(graph.c_lut_delay[sl], slew_q, load_out)
                out_slew = graph.lutbank.lookup(graph.c_lut_slew[sl], slew_q, load_out)
                idx = dst * 2 + tout
                reduce_at(at_flat, idx, at[src, tin] + delay)
                reduce_at(slew_flat, idx, out_slew)
        return at, slew

    def _required_times(
        self, graph, at, slew, net_delay, driver_load, clock=None
    ) -> np.ndarray:
        """Backward RAT propagation for the late (setup) mode."""
        n_pins = self.design.n_pins
        rat = np.full((n_pins, 2), _POS_INF)
        period = self.design.constraints.clock_period
        if len(graph.setup_d):
            if clock is not None:
                ck_at = clock.at[graph.setup_ck]
                ck_slew = clock.slew[graph.setup_ck]
            else:
                ck_at = np.zeros(len(graph.setup_d))
                ck_slew = np.full(len(graph.setup_d), graph.clock_slew)
            for t in (RISE, FALL):
                setup_time = graph.lutbank.lookup(
                    graph.setup_lut[:, t],
                    np.clip(slew[graph.setup_d, t], 0.0, 1e6),
                    ck_slew,
                )
                rat[graph.setup_d, t] = period + ck_at - setup_time
        if len(graph.po_pins):
            rat[graph.po_pins] = (period - graph.po_output_delay)[:, None]

        rat_flat = rat.reshape(-1)
        for level in range(graph.n_levels - 1, 0, -1):
            sl = graph.cell_arcs.level_slice(level)
            if sl.stop > sl.start:
                src = graph.c_src[sl]
                dst = graph.c_dst[sl]
                tin = graph.c_tin[sl]
                tout = graph.c_tout[sl]
                slew_q = np.clip(slew[src, tin], 0.0, 1e6)
                delay = graph.lutbank.lookup(
                    graph.c_lut_delay[sl], slew_q, driver_load[dst]
                )
                np.minimum.at(rat_flat, src * 2 + tin, rat[dst, tout] - delay)
            sl = graph.net_arcs.level_slice(level)
            if sl.stop > sl.start:
                sinks = graph.net_sink[sl]
                srcs = graph.net_src[sl]
                cand = rat[sinks] - net_delay[sinks][:, None]
                np.minimum.at(rat_flat, srcs * 2 + 0, cand[:, 0])
                np.minimum.at(rat_flat, srcs * 2 + 1, cand[:, 1])
        return rat


def run_sta(
    design: Design,
    cell_x: Optional[np.ndarray] = None,
    cell_y: Optional[np.ndarray] = None,
    compute_hold: bool = False,
    wire_delay_model: str = "elmore",
    propagated_clock: bool = False,
    graph: Optional[TimingGraph] = None,
) -> STAResult:
    """One-shot STA convenience wrapper.

    ``graph`` skips the levelization/LUT-banking rebuild by reusing a
    prebuilt :class:`TimingGraph` of the *same* design (e.g. from a
    cached design bundle); results are bit-identical either way.
    """
    analyzer = StaticTimingAnalyzer(
        design, graph=graph, wire_delay_model=wire_delay_model
    )
    return analyzer.run(
        cell_x, cell_y, compute_hold=compute_hold,
        propagated_clock=propagated_clock,
    )
