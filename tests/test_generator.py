"""Unit tests for the synthetic benchmark generator."""

import numpy as np
import pytest

from repro.netlist import GeneratorSpec, generate_design, make_chain_design


class TestGeneratedStructure:
    def test_determinism(self):
        spec = GeneratorSpec(n_cells=200, depth=8, seed=13)
        d1 = generate_design(spec)
        d2 = generate_design(spec)
        assert d1.cell_name == d2.cell_name
        assert d1.net_name == d2.net_name
        np.testing.assert_array_equal(d1.net2pin, d2.net2pin)
        np.testing.assert_allclose(d1.cell_x, d2.cell_x)

    def test_different_seeds_differ(self):
        d1 = generate_design(GeneratorSpec(n_cells=200, depth=8, seed=1))
        d2 = generate_design(GeneratorSpec(n_cells=200, depth=8, seed=2))
        assert not np.array_equal(d1.net2pin, d2.net2pin)

    def test_every_net_has_driver_and_sink(self, small_design):
        d = small_design
        assert (d.net_driver >= 0).all()
        assert (d.net_degrees >= 2).all()

    def test_has_flipflops_and_clock_net(self, small_design):
        d = small_design
        seq = [c for c in range(d.n_cells) if d.cell_type_of(c).is_sequential]
        assert len(seq) > 0
        assert d.net_is_clock.sum() == 1
        ck_net = int(np.nonzero(d.net_is_clock)[0][0])
        # The clock net connects the clock port to every FF CK pin.
        assert d.net_degree(ck_net) == len(seq) + 1

    def test_utilization_close_to_target(self):
        spec = GeneratorSpec(n_cells=400, depth=10, seed=3, utilization=0.7)
        d = generate_design(spec)
        assert d.movable_area / d.die_area == pytest.approx(0.7, abs=0.02)

    def test_cell_count_near_target(self):
        spec = GeneratorSpec(n_cells=600, depth=12, seed=5)
        d = generate_design(spec)
        movable = int((~d.cell_fixed).sum())
        # High-fanout buffers and collector gates add some overhead.
        assert 600 <= movable <= 600 * 1.6

    def test_fanout_bounded_except_clock_and_hf(self):
        spec = GeneratorSpec(
            n_cells=300, depth=8, seed=9, max_fanout=8, n_high_fanout_nets=0
        )
        d = generate_design(spec)
        for ni in range(d.n_nets):
            if d.net_is_clock[ni]:
                continue
            assert d.net_degree(ni) - 1 <= 8 + 2  # slack for endpoint hookup

    def test_high_fanout_nets_exist(self, small_design):
        d = small_design
        degrees = [
            d.net_degree(ni)
            for ni in range(d.n_nets)
            if not d.net_is_clock[ni]
        ]
        assert max(degrees) >= 10

    def test_ports_on_boundary(self, small_design):
        d = small_design
        xl, yl, xh, yh = d.die
        for i in range(d.n_cells):
            if d.cell_is_port[i]:
                on_edge = (
                    abs(d.cell_x[i] - xl) < 1e-6
                    or abs(d.cell_x[i] - xh) < 1e-6
                    or abs(d.cell_y[i] - yl) < 1e-6
                    or abs(d.cell_y[i] - yh) < 1e-6
                )
                assert on_edge

    def test_constraints_populated(self, small_design):
        c = small_design.constraints
        assert c.clock_period > 0
        assert len(c.input_delays) > 0
        assert len(c.output_loads) > 0

    def test_combinational_dag_is_acyclic(self, small_design):
        # TimingGraph construction levelises and would raise on a cycle.
        from repro.sta import TimingGraph

        graph = TimingGraph(small_design)
        assert graph.n_levels > small_design.n_cells ** 0  # built fine

    def test_logic_depth_scales_with_spec(self):
        from repro.sta import TimingGraph

        shallow = generate_design(GeneratorSpec(n_cells=200, depth=4, seed=1))
        deep = generate_design(GeneratorSpec(n_cells=200, depth=12, seed=1))
        assert TimingGraph(deep).n_levels > TimingGraph(shallow).n_levels


class TestChainDesign:
    def test_structure(self):
        d = make_chain_design(5)
        assert d.n_cells == 3 + 5 + 1  # ports + gates + ff
        assert d.n_nets == 5 + 1 + 1 + 1

    def test_spread_positions_monotone(self):
        d = make_chain_design(4, spread=True)
        xs = [d.cell_x[d.cell_index(f"g{i}")] for i in range(4)]
        assert all(a < b for a, b in zip(xs, xs[1:]))

    def test_custom_cell(self):
        d = make_chain_design(3, cell="BUF_X1")
        assert d.cell_type_of(d.cell_index("g0")).name == "BUF_X1"
