"""Unit tests for the flattened routing Forest."""

import numpy as np
import pytest

from repro.route import Forest, build_forest, build_trees


@pytest.fixture()
def small_forest(small_design, spread_positions):
    x, y = spread_positions
    return build_forest(small_design, x, y), (x, y)


class TestConstruction:
    def test_clock_and_degenerate_nets_skipped(self, small_design, spread_positions):
        x, y = spread_positions
        trees = build_trees(small_design, x, y)
        assert len(trees) == small_design.n_nets
        for ni, tree in enumerate(trees):
            if small_design.net_is_clock[ni]:
                assert tree is None

    def test_include_clock_flag(self, small_design, spread_positions):
        x, y = spread_positions
        trees = build_trees(small_design, x, y, include_clock=True)
        clock_net = int(np.nonzero(small_design.net_is_clock)[0][0])
        assert trees[clock_net] is not None

    def test_levels_partition_nodes(self, small_forest):
        forest, _ = small_forest
        total = sum(len(level) for level in forest.levels)
        assert total == forest.n_nodes

    def test_roots_at_level_zero(self, small_forest):
        forest, _ = small_forest
        roots = np.nonzero(forest.is_root)[0]
        assert (forest.depth[roots] == 0).all()
        assert (forest.parent[roots] == -1).all()

    def test_pin_node_mapping_bijective_on_routed_pins(self, small_forest):
        forest, _ = small_forest
        mapped = forest.pin_node[forest.pin_node >= 0]
        assert len(np.unique(mapped)) == len(mapped)
        pins = forest.node_pin[mapped]
        assert (forest.pin_node[pins] == mapped).all()


class TestCoordinates:
    def test_node_coords_match_trees(self, small_design, spread_positions):
        x, y = spread_positions
        forest = build_forest(small_design, x, y)
        px, py = small_design.pin_positions(x, y)
        nx, ny = forest.node_coords(px, py)
        for ni, tree in enumerate(forest.trees):
            if tree is None:
                continue
            base = forest.node_offset[ni]
            np.testing.assert_allclose(nx[base : base + tree.n_nodes], tree.x)
            np.testing.assert_allclose(ny[base : base + tree.n_nodes], tree.y)

    def test_steiner_points_track_owner_pins(self, small_design, spread_positions):
        """The Figure 4 reuse rule: move a pin, its Steiner points follow."""
        x, y = spread_positions
        forest = build_forest(small_design, x, y)
        px, py = small_design.pin_positions(x, y)
        nx0, ny0 = forest.node_coords(px, py)
        # Shift every pin by a constant: all nodes shift identically.
        nx1, ny1 = forest.node_coords(px + 2.5, py - 1.0)
        np.testing.assert_allclose(nx1 - nx0, 2.5)
        np.testing.assert_allclose(ny1 - ny0, -1.0)

    def test_total_wirelength_positive(self, small_forest, small_design):
        forest, (x, y) = small_forest
        px, py = small_design.pin_positions(x, y)
        assert forest.total_wirelength(px, py) > 0


class TestGradientScatter:
    def test_scatter_is_adjoint_of_gather(self, small_forest, small_design):
        """<g_node, d node/d pin * v> == <scatter(g_node), v> for random v."""
        forest, (x, y) = small_forest
        design = small_design
        rng = np.random.default_rng(0)
        g_nx = rng.normal(size=forest.n_nodes)
        g_ny = rng.normal(size=forest.n_nodes)
        v_px = rng.normal(size=design.n_pins)
        v_py = rng.normal(size=design.n_pins)

        g_px, g_py = forest.scatter_coord_grad(g_nx, g_ny)
        lhs = float(g_px @ v_px + g_py @ v_py)
        # Forward directional derivative: node coords are pure gathers.
        d_nx = v_px[forest.owner_x_pin]
        d_ny = v_py[forest.owner_y_pin]
        rhs = float(g_nx @ d_nx + g_ny @ d_ny)
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_edge_lengths_zero_for_roots(self, small_forest, small_design):
        forest, (x, y) = small_forest
        px, py = small_design.pin_positions(x, y)
        nx, ny = forest.node_coords(px, py)
        lengths = forest.edge_lengths(nx, ny)
        roots = np.nonzero(forest.is_root)[0]
        assert (lengths[roots] == 0).all()
        assert (lengths >= 0).all()
