"""Unit tests for the momentum net-weighting baseline [24]."""

import numpy as np
import pytest

from repro.place.netweight import (
    MomentumNetWeighter,
    NetWeightingPlacer,
    NetWeightOptions,
)
from repro.place import PlacerOptions


class TestWeighter:
    def test_inactive_before_start(self, small_design, spread_positions):
        x, y = spread_positions
        w = MomentumNetWeighter(small_design, NetWeightOptions(start_iteration=50))
        assert w(0, x, y) is None
        assert w(49, x, y) is None
        assert w.n_sta_calls == 0

    def test_period_respected(self, small_design, spread_positions):
        x, y = spread_positions
        w = MomentumNetWeighter(
            small_design, NetWeightOptions(start_iteration=10, period=5)
        )
        assert w(10, x, y) is not None
        assert w(11, x, y) is None
        assert w(15, x, y) is not None
        assert w.n_sta_calls == 2

    def test_weights_grow_only_on_critical_nets(self, small_design, spread_positions):
        x, y = spread_positions
        w = MomentumNetWeighter(
            small_design, NetWeightOptions(start_iteration=0, period=1)
        )
        weights = w(0, x, y)
        assert weights is not None
        assert (weights >= 1.0 - 1e-12).all()
        # Nets with positive slack keep weight exactly 1.
        from repro.sta import run_sta

        res = run_sta(small_design, x, y)
        slack = res.net_worst_slack()
        positive = slack > 0
        np.testing.assert_allclose(weights[positive], 1.0)
        critical = slack < 0
        assert weights[critical].max() > 1.0

    def test_weights_bounded(self, small_design, spread_positions):
        x, y = spread_positions
        opts = NetWeightOptions(start_iteration=0, period=1, max_weight=4.0, alpha=5.0)
        w = MomentumNetWeighter(small_design, opts)
        for it in range(30):
            weights = w(it, x, y)
        assert weights.max() <= 4.0 + 1e-9

    def test_momentum_smooths_updates(self, small_design, spread_positions):
        x, y = spread_positions
        fast = MomentumNetWeighter(
            small_design, NetWeightOptions(start_iteration=0, period=1, beta=0.0)
        )
        slow = MomentumNetWeighter(
            small_design, NetWeightOptions(start_iteration=0, period=1, beta=0.95)
        )
        wf = fast(0, x, y)
        ws = slow(0, x, y)
        # Lower momentum -> bigger first-step movement away from 1.
        assert (wf - 1.0).max() > (ws - 1.0).max()

    def test_records_last_metrics(self, small_design, spread_positions):
        x, y = spread_positions
        w = MomentumNetWeighter(small_design, NetWeightOptions(start_iteration=0))
        w(0, x, y)
        assert w.last_wns != 0.0
        assert w.last_tns <= 0.0 or w.last_tns == 0.0


class TestNetWeightingPlacer:
    def test_end_to_end_improves_timing(self, medium_design):
        from repro.place import GlobalPlacer
        from repro.sta import run_sta

        popts = PlacerOptions(max_iters=450, seed=0)
        base = GlobalPlacer(medium_design, popts).run()
        nw = NetWeightingPlacer(medium_design, popts).run()
        rb = run_sta(medium_design, base.x, base.y)
        rn = run_sta(medium_design, nw.x, nw.y)
        # The net-weighting baseline should improve TNS over plain
        # wirelength placement (that is its entire purpose).
        assert rn.tns_setup > rb.tns_setup

    def test_trace_contains_sta_metrics(self, medium_design):
        popts = PlacerOptions(max_iters=200)
        nw = NetWeightingPlacer(
            medium_design, popts, NetWeightOptions(start_iteration=50)
        )
        result = nw.run()
        assert any("wns" in t for t in result.trace)
