"""Checkpoint/restart tests (repro.runtime.checkpoint + placer resume).

Covers the file format round-trip, the manager's retention policy, and
the headline property: killing a run and resuming from its last
checkpoint reproduces the remaining trajectory bit for bit.
"""

import glob
import os

import numpy as np
import pytest

from repro.place.placer import GlobalPlacer, PlacerOptions
from repro.runtime import (
    CheckpointManager,
    PlacerCheckpoint,
    load_checkpoint,
    save_checkpoint,
)


def _dummy_checkpoint(iteration=5, overflow=0.5):
    rng = np.random.default_rng(0)
    return PlacerCheckpoint(
        design="dummy",
        iteration=iteration,
        pos=np.arange(8.0),
        optimizer={"kind": "adam", "x": np.arange(8.0), "lr": 0.1,
                   "m": np.zeros(8), "s": np.zeros(8), "t": 3},
        lam=0.25,
        net_weights=np.ones(3),
        overflow=overflow,
        prev_overflow=overflow + 0.01,
        best_overflow=overflow,
        best_pos=np.arange(8.0),
        recent_hpwl=[1.0, 2.0],
        rng_state=rng.bit_generator.state,
    )


class TestFileFormat:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "a.ckpt")
        cp = _dummy_checkpoint()
        save_checkpoint(cp, path)
        back = load_checkpoint(path)
        assert back.iteration == cp.iteration
        np.testing.assert_array_equal(back.pos, cp.pos)
        assert back.lam == cp.lam
        assert back.rng_state == cp.rng_state

    def test_rejects_non_checkpoint(self, tmp_path):
        import pickle

        path = str(tmp_path / "junk.ckpt")
        with open(path, "wb") as handle:
            pickle.dump({"not": "a checkpoint"}, handle)
        with pytest.raises(ValueError, match="not a placer checkpoint"):
            load_checkpoint(path)

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = str(tmp_path / "a.ckpt")
        save_checkpoint(_dummy_checkpoint(), path)
        assert os.listdir(tmp_path) == ["a.ckpt"]


class TestManager:
    def test_disabled_by_default(self, tmp_path):
        manager = CheckpointManager(directory=str(tmp_path))
        assert not manager.enabled
        assert manager.maybe_save(10, _dummy_checkpoint) is None

    def test_period_and_skip_iteration_zero(self, tmp_path):
        manager = CheckpointManager(directory=str(tmp_path), every=5)
        assert manager.maybe_save(0, _dummy_checkpoint) is None
        assert manager.maybe_save(3, _dummy_checkpoint) is None
        path = manager.maybe_save(5, _dummy_checkpoint)
        assert path is not None and os.path.exists(path)

    def test_retention_keeps_latest_and_best(self, tmp_path):
        manager = CheckpointManager(directory=str(tmp_path), every=1, keep=2)
        overflows = {1: 0.9, 2: 0.1, 3: 0.8, 4: 0.7, 5: 0.6}
        for it, ov in overflows.items():
            manager.maybe_save(it, lambda it=it, ov=ov: _dummy_checkpoint(it, ov))
        files = set(glob.glob(str(tmp_path / "*.ckpt")))
        # Best (iteration 2, overflow 0.1) survives pruning...
        assert manager.best_path() in files
        assert load_checkpoint(manager.best_path()).iteration == 2
        # ...and so does the most recent one.
        assert manager.latest_path() in files
        assert load_checkpoint(manager.latest_path()).iteration == 5

    def test_load_best_none_when_empty(self, tmp_path):
        manager = CheckpointManager(directory=str(tmp_path), every=5)
        assert manager.best_path() is None
        assert manager.load_best() is None


class TestPlacerResume:
    def test_resume_is_bit_identical(self, small_design, tmp_path):
        """Kill/resume: the resumed run must replay the remaining
        trajectory exactly - same iteration series, same HPWL values,
        same final positions."""
        opts = PlacerOptions(
            max_iters=40, min_iters=5, seed=3,
            checkpoint_every=10, checkpoint_dir=str(tmp_path),
        )
        full = GlobalPlacer(small_design, opts).run()
        checkpoint = str(tmp_path / glob.glob1(str(tmp_path), "*iter000020*")[0])

        resumed = GlobalPlacer(
            small_design,
            PlacerOptions(
                max_iters=40, min_iters=5, seed=3, resume_from=checkpoint
            ),
        ).run()

        it_full, hp_full = full.series("hpwl")
        it_res, hp_res = resumed.series("hpwl")
        overlap = it_full >= 20
        np.testing.assert_array_equal(it_full[overlap], it_res)
        np.testing.assert_array_equal(hp_full[overlap], hp_res)
        _, ov_full = full.series("overflow")
        _, ov_res = resumed.series("overflow")
        np.testing.assert_array_equal(ov_full[overlap], ov_res)
        np.testing.assert_array_equal(full.x, resumed.x)
        np.testing.assert_array_equal(full.y, resumed.y)
        assert resumed.stop_reason == full.stop_reason

    def test_resume_timing_mode_bit_identical(self, tmp_path):
        """Same property with the differentiable timing objective active
        (exercises the Steiner-forest / norm-cache state provider)."""
        from repro.core.objective import TimingObjectiveOptions
        from repro.core.timing_placer import (
            TimingDrivenPlacer,
            TimingPlacerOptions,
        )
        from repro.harness import load_design

        design = load_design("miniblue1")

        def run(**placer_kwargs):
            return TimingDrivenPlacer(
                design,
                TimingPlacerOptions(
                    placer=PlacerOptions(
                        max_iters=25, min_iters=5, seed=0, **placer_kwargs
                    ),
                    timing=TimingObjectiveOptions(
                        start_iteration=5, rsmt_period=7,
                        norm_refresh_period=3,
                    ),
                    sta_every=5,
                ),
            ).run()

        full = run(checkpoint_every=8, checkpoint_dir=str(tmp_path))
        checkpoint = str(tmp_path / glob.glob1(str(tmp_path), "*iter000016*")[0])
        resumed = run(resume_from=checkpoint)

        it_full, hp_full = full.series("hpwl")
        overlap = it_full >= 16
        np.testing.assert_array_equal(hp_full[overlap], resumed.series("hpwl")[1])
        for key in ("tns_smoothed", "wns_smoothed", "tns", "wns"):
            it1, v1 = full.series(key)
            np.testing.assert_array_equal(
                v1[it1 >= 16], resumed.series(key)[1]
            )
        np.testing.assert_array_equal(full.x, resumed.x)

    def test_optimizer_state_round_trip(self):
        from repro.place.optimizer import make_optimizer

        rng = np.random.default_rng(0)
        x0 = rng.normal(size=16)
        for kind in ("nesterov", "adam"):
            a = make_optimizer(kind, x0, lr=0.1)
            for _ in range(3):
                a.step(rng.normal(size=16))
            b = make_optimizer(kind, np.zeros(16), lr=0.5)
            b.set_state(a.get_state())
            grad = rng.normal(size=16)
            np.testing.assert_array_equal(
                a.step(grad.copy()), b.step(grad.copy())
            )

    def test_optimizer_state_kind_mismatch(self):
        from repro.place.optimizer import make_optimizer

        nesterov = make_optimizer("nesterov", np.zeros(4), lr=0.1)
        adam = make_optimizer("adam", np.zeros(4), lr=0.1)
        with pytest.raises(ValueError, match="nesterov"):
            adam.set_state(nesterov.get_state())
