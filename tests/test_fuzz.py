"""Property-based fuzzing across subsystem boundaries.

Random generator specs, placements and netlists are pushed through the
full stack (generation -> routing -> STA -> legalization) and global
invariants are asserted.  Examples are deliberately small: the goal is
structural coverage of odd shapes (tiny depths, huge fanout, degenerate
coordinates), not statistical load.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import GeneratorSpec, generate_design
from repro.place import hpwl, legalize, max_overlap, rudy_map
from repro.route import build_forest
from repro.sta import TimingGraph, run_sta

spec_strategy = st.builds(
    GeneratorSpec,
    n_cells=st.integers(min_value=40, max_value=220),
    depth=st.integers(min_value=2, max_value=12),
    seed=st.integers(min_value=0, max_value=10**6),
    ff_fraction=st.floats(min_value=0.05, max_value=0.3),
    n_inputs=st.integers(min_value=2, max_value=16),
    n_outputs=st.integers(min_value=2, max_value=16),
    max_fanout=st.integers(min_value=3, max_value=12),
    n_high_fanout_nets=st.integers(min_value=0, max_value=3),
    utilization=st.floats(min_value=0.4, max_value=0.85),
)


@settings(max_examples=12, deadline=None)
@given(spec=spec_strategy)
def test_generated_designs_satisfy_global_invariants(spec):
    design = generate_design(spec)
    # Structure.
    assert (design.net_driver >= 0).all()
    assert (design.net_degrees >= 2).all()
    assert design.net_is_clock.sum() == 1
    assert design.movable_area / design.die_area == pytest.approx(
        spec.utilization, abs=0.03
    )
    # Timing graph builds (acyclic) and STA is finite at the default
    # placement.
    graph = TimingGraph(design)
    assert graph.n_endpoints > 0
    result = run_sta(design)
    assert np.isfinite(result.wns_setup)
    assert result.tns_setup <= 0.0
    assert (np.abs(result.endpoint_slack) < 1e29).all()


@settings(max_examples=10, deadline=None)
@given(
    spec=spec_strategy,
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_random_placements_route_time_and_legalize(spec, seed):
    design = generate_design(spec)
    rng = np.random.default_rng(seed)
    xl, yl, xh, yh = design.die
    x = rng.uniform(xl, xh, design.n_cells)
    y = rng.uniform(yl, yh, design.n_cells)
    x[design.cell_fixed] = design.cell_x[design.cell_fixed]
    y[design.cell_fixed] = design.cell_y[design.cell_fixed]

    # Routing: every timing net gets a connected tree not longer than HPWL
    # would allow being shorter (RSMT >= half-perimeter per net).
    forest = build_forest(design, x, y)
    px, py = design.pin_positions(x, y)
    assert forest.total_wirelength(px, py) >= 0

    # Timing is finite at arbitrary placements.
    result = run_sta(design, x, y)
    assert np.isfinite(result.wns_setup)
    # AT at a net sink is never earlier than at its driver (wire delay >= 0).
    g = result.graph
    reached = result.at[g.net_src].max(axis=1) > -1e29
    assert (
        result.at[g.net_sink].max(axis=1)[reached]
        >= result.at[g.net_src].max(axis=1)[reached] - 1e-9
    ).all()

    # Legalization always yields an overlap-free in-die placement.
    lx, ly = legalize(design, x, y)
    assert max_overlap(design, lx, ly) < 1e-9
    movable = ~design.cell_fixed
    assert (lx[movable] - 0.5 * design.cell_w[movable] >= xl - 1e-9).all()
    assert (lx[movable] + 0.5 * design.cell_w[movable] <= xh + 1e-9).all()

    # Congestion map well-formed.
    cm = rudy_map(design, lx, ly, n_bins=8)
    assert np.isfinite(cm.density).all()


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=16),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_elmore_delay_monotone_along_root_paths(n, seed):
    """Downstream of the driver, Elmore delay can only accumulate."""
    from repro.route import Forest, build_rsmt
    from repro.sta.elmore import elmore_forward, node_caps
    from repro.netlist import WireModel

    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 50, n)
    y = rng.uniform(0, 50, n)
    tree = build_rsmt(x, y, np.arange(n), driver_local=0)
    forest = Forest([tree], n)
    caps = np.zeros(forest.n_nodes)
    caps[forest.node_pin >= 0] = rng.uniform(0.5, 5.0, tree.n_pins)
    elm = elmore_forward(
        forest, tree.x, tree.y, caps, WireModel(0.01, 0.2)
    )
    hp = forest.has_parent
    assert (elm.delay[hp] >= elm.delay[forest.parent[hp]] - 1e-12).all()
    assert (elm.load <= elm.load[forest.is_root].max() + 1e-9).all()


@settings(max_examples=15, deadline=None)
@given(
    n_cells=st.integers(min_value=5, max_value=60),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_wa_wirelength_bounds_hold_for_random_inputs(n_cells, seed):
    """Smoothed wirelength stays within its theoretical HPWL bounds."""
    from repro.place.wirelength import WAWirelength

    design = generate_design(
        GeneratorSpec(n_cells=max(n_cells, 40), depth=3, seed=seed)
    )
    rng = np.random.default_rng(seed)
    x = design.cell_x + rng.normal(0, 4, design.n_cells)
    y = design.cell_y + rng.normal(0, 4, design.n_cells)
    wa = WAWirelength(design)
    gamma = float(rng.uniform(0.5, 8.0))
    smooth, gx, gy = wa.evaluate(x, y, gamma)
    exact = hpwl(design, x, y)
    assert smooth <= exact + 1e-6
    assert np.isfinite(gx).all() and np.isfinite(gy).all()
