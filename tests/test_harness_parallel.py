"""Process-parallel suite runner: determinism, manifests, CLI plumbing.

``--jobs N`` must be a wall-clock-only knob: the per-design final
metrics it produces are identical to a serial run, the merged suite
manifest aggregates per-run telemetry and span trees, and the CLI
``suite`` subcommand writes byte-stable metric files.  The warm-worker
path (spawn pool + design-bundle cache) must be byte-identical to the
legacy cold path - the cache is a wall-clock optimisation only.
"""

import json
import os

import numpy as np
import pytest

import repro.harness.parallel as parallel_mod
from repro.harness.__main__ import main as harness_main
from repro.harness.parallel import (
    SUITE_MANIFEST_FILENAME,
    SuiteTask,
    run_parallel,
    suite_metrics,
    write_suite_manifest,
)
from repro.perf import merge_span_trees

# Small matrix that still exercises two designs and the timing objective.
_TASKS = [
    SuiteTask(design="miniblue4", mode="ours", max_iters=40),
    SuiteTask(design="miniblue18", mode="ours", max_iters=40),
    SuiteTask(design="miniblue4", mode="ours", seed=1, max_iters=40),
]


class TestMergeSpanTrees:
    def test_sums_matched_nodes_and_rederives_self(self):
        leaf = {"name": "k", "calls": 1, "total_s": 1.0, "self_s": 1.0,
                "counters": {"n": 2}, "children": []}
        tree = {"name": "run", "calls": 1, "total_s": 3.0, "self_s": 2.0,
                "counters": {}, "children": [leaf]}
        merged = merge_span_trees([tree, tree])
        assert merged["calls"] == 2
        (child,) = merged["children"]
        assert child["calls"] == 2
        assert child["total_s"] == 2.0
        assert child["counters"] == {"n": 4}
        # The root is a synthetic wrapper: its total is the child sum.
        assert merged["total_s"] == 2.0
        assert merged["self_s"] == 0.0

    def test_disjoint_children_union(self):
        def tree(child_name):
            return {
                "name": "run", "calls": 1, "total_s": 1.0, "self_s": 0.0,
                "counters": {},
                "children": [{"name": child_name, "calls": 1,
                              "total_s": 1.0, "self_s": 1.0,
                              "counters": {}, "children": []}],
            }

        merged = merge_span_trees([tree("a"), tree("b")])
        assert {c["name"] for c in merged["children"]} == {"a", "b"}


class TestRunParallelDeterminism:
    def test_jobs2_metrics_identical_to_serial(self):
        serial = run_parallel(_TASKS, jobs=1)
        parallel = run_parallel(_TASKS, jobs=2)
        assert suite_metrics(_TASKS, serial) == suite_metrics(_TASKS, parallel)

    def test_results_in_task_order(self):
        records = run_parallel(_TASKS, jobs=2)
        assert [r.design for r in records] == [t.design for t in _TASKS]

    def test_seeds_keyed_separately(self):
        records = run_parallel(_TASKS, jobs=1)
        metrics = suite_metrics(_TASKS, records)
        assert set(metrics["miniblue4"]["ours"]) == {"s0", "s1"}
        assert set(metrics["miniblue18"]["ours"]) == {"s0"}


class TestWarmWorkers:
    def test_pool_pinned_to_spawn(self, monkeypatch):
        """Fork would inherit warmed NumPy/RNG state; spawn must be used."""
        seen = []
        real = parallel_mod.multiprocessing.get_context

        def spy(method=None):
            seen.append(method)
            return real(method)

        monkeypatch.setattr(
            parallel_mod.multiprocessing, "get_context", spy
        )
        run_parallel(_TASKS[:2], jobs=2)
        assert seen == ["spawn"]

    def test_cold_and_warm_serial_byte_identical(self, tmp_path):
        """The cache is wall-clock-only: records must not change at all."""
        cold = run_parallel(_TASKS, jobs=1, use_cache=False)
        warm = run_parallel(
            _TASKS, jobs=1, use_cache=True, cache_dir=str(tmp_path)
        )
        assert suite_metrics(_TASKS, cold) == suite_metrics(_TASKS, warm)
        for c, w in zip(cold, warm):
            np.testing.assert_array_equal(c.x, w.x)
            np.testing.assert_array_equal(c.y, w.y)
            assert c.wns == w.wns and c.tns == w.tns and c.hpwl == w.hpwl

    def test_cold_serial_vs_warm_parallel_byte_identical(self, tmp_path):
        cold = run_parallel(_TASKS, jobs=1, use_cache=False)
        warm = run_parallel(
            _TASKS, jobs=2, use_cache=True, cache_dir=str(tmp_path)
        )
        for c, w in zip(cold, warm):
            np.testing.assert_array_equal(c.x, w.x)
            np.testing.assert_array_equal(c.y, w.y)
        assert suite_metrics(_TASKS, cold) == suite_metrics(_TASKS, warm)

    def test_warm_records_carry_cache_provenance(self, tmp_path):
        records = run_parallel(
            _TASKS, jobs=1, use_cache=True, cache_dir=str(tmp_path)
        )
        for rec in records:
            assert rec.setup_s >= 0.0
            assert rec.design_cache is not None
            assert rec.design_cache["key"]
            # The parent primed the cache, so loads are hits.
            assert rec.design_cache["hit"]

    def test_cold_records_have_no_cache_provenance(self):
        (rec,) = run_parallel(_TASKS[:1], jobs=1, use_cache=False)
        assert rec.design_cache is None
        assert rec.setup_s > 0.0


class TestSuiteManifest:
    def test_manifest_merges_runs_and_span_trees(self, tmp_path):
        tdir = str(tmp_path)
        tasks = [
            SuiteTask(design="miniblue4", mode="ours", max_iters=40,
                      telemetry_dir=tdir),
            SuiteTask(design="miniblue18", mode="ours", max_iters=40,
                      telemetry_dir=tdir),
        ]
        records = run_parallel(tasks, jobs=2)
        path = write_suite_manifest(tdir, tasks, records, jobs=2)
        assert os.path.basename(path) == SUITE_MANIFEST_FILENAME
        payload = json.loads(open(path).read())
        assert payload["jobs"] == 2
        assert payload["n_runs"] == 2
        run_ids = [r["run_id"] for r in payload["runs"]]
        assert run_ids == ["miniblue4_ours_s0", "miniblue18_ours_s0"]
        # Deterministic run ids double as telemetry directory names.
        for entry in payload["runs"]:
            assert entry["manifest"] is not None
            assert os.path.isdir(os.path.join(tdir, entry["run_id"]))
            # Cache provenance: setup split + bundle key/hit recorded in
            # both the suite entry and the per-run manifest.
            assert entry["setup_s"] >= 0.0
            assert entry["design_cache"]["key"]
            assert entry["manifest"]["design_cache"]["key"] == (
                entry["design_cache"]["key"]
            )
        merged = payload["merged_span_tree"]
        assert merged is not None
        names = {c["name"] for c in merged["children"]}
        assert "route.build_forest" in names

    def test_no_telemetry_runs_produce_null_tree(self, tmp_path):
        tasks = [SuiteTask(design="miniblue4", mode="ours", max_iters=30)]
        records = run_parallel(tasks, jobs=1)
        path = write_suite_manifest(str(tmp_path), tasks, records, jobs=1)
        payload = json.loads(open(path).read())
        assert payload["merged_span_tree"] is None
        assert payload["runs"][0]["final_metrics"]["iterations"] > 0


class TestSuiteCLI:
    def test_suite_subcommand_metrics_byte_identical_across_jobs(
        self, tmp_path
    ):
        out1 = str(tmp_path / "m1.json")
        out2 = str(tmp_path / "m2.json")
        base = [
            "suite", "--designs", "miniblue4", "--modes", "ours",
            "--max-iters", "40", "--metrics-out",
        ]
        assert harness_main(base + [out1, "--jobs", "1"]) == 0
        assert harness_main(base + [out2, "--jobs", "2"]) == 0
        assert open(out1, "rb").read() == open(out2, "rb").read()

    def test_suite_subcommand_writes_manifest(self, tmp_path):
        tdir = str(tmp_path / "telemetry")
        rc = harness_main(
            [
                "suite", "--designs", "miniblue4", "--modes", "ours",
                "--max-iters", "40", "--jobs", "1", "--telemetry", tdir,
            ]
        )
        assert rc == 0
        assert os.path.exists(os.path.join(tdir, SUITE_MANIFEST_FILENAME))
