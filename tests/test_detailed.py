"""Tests for the timing-driven detailed placer."""

import numpy as np
import pytest

from repro.place import (
    DetailedPlacerOptions,
    GlobalPlacer,
    PlacerOptions,
    TimingDrivenDetailedPlacer,
    legalize,
    max_overlap,
)
from repro.sta import run_sta


@pytest.fixture(scope="module")
def legal_placement(small_design):
    gp = GlobalPlacer(small_design, PlacerOptions(max_iters=350)).run()
    return legalize(small_design, gp.x, gp.y)


@pytest.fixture(scope="module")
def dp_result(small_design, legal_placement):
    lx, ly = legal_placement
    placer = TimingDrivenDetailedPlacer(
        small_design, DetailedPlacerOptions(passes=1, n_critical_paths=4)
    )
    return placer.run(lx, ly)


class TestDetailedPlacement:
    def test_timing_never_degrades(self, dp_result):
        assert dp_result.wns_after >= dp_result.wns_before - 1e-6
        assert dp_result.tns_after >= dp_result.tns_before - 1e-6

    def test_placement_stays_legal(self, small_design, dp_result):
        assert max_overlap(small_design, dp_result.x, dp_result.y) < 1e-9

    def test_cells_stay_in_rows(self, small_design, dp_result):
        yl = small_design.die[1]
        movable = ~small_design.cell_fixed
        offsets = (
            dp_result.y[movable] - yl
        ) / small_design.row_height - 0.5
        np.testing.assert_allclose(offsets, np.round(offsets), atol=1e-9)

    def test_result_matches_golden_sta(self, small_design, dp_result):
        ref = run_sta(small_design, dp_result.x, dp_result.y)
        assert dp_result.wns_after == pytest.approx(ref.wns_setup, abs=1e-3)
        assert dp_result.tns_after == pytest.approx(
            ref.tns_setup, rel=1e-4, abs=1e-2
        )

    def test_trial_accounting(self, dp_result):
        assert dp_result.n_trials >= dp_result.n_accepted >= 0

    def test_fixed_cells_untouched(self, small_design, legal_placement, dp_result):
        lx, ly = legal_placement
        fixed = small_design.cell_fixed
        np.testing.assert_allclose(dp_result.x[fixed], lx[fixed])
        np.testing.assert_allclose(dp_result.y[fixed], ly[fixed])


class TestGapFinding:
    def test_row_gaps_fit_width(self, small_design, legal_placement):
        lx, ly = legal_placement
        placer = TimingDrivenDetailedPlacer(small_design)
        placer.timer.reset(lx, ly)
        gaps = placer._row_gaps(2.0)
        assert len(gaps) > 0
        xl, yl, xh, yh = small_design.die
        for gx, gy in gaps:
            assert xl <= gx - 1.0 and gx + 1.0 <= xh + 1e-9
            frac = (gy - yl) / small_design.row_height - 0.5
            assert frac == pytest.approx(round(frac), abs=1e-9)

    def test_swap_candidates_have_equal_width(self, small_design, legal_placement):
        lx, ly = legal_placement
        placer = TimingDrivenDetailedPlacer(small_design)
        placer.timer.reset(lx, ly)
        movable = np.nonzero(~small_design.cell_fixed)[0]
        ci = int(movable[0])
        for cj in placer._swap_candidates(ci, movable):
            assert small_design.cell_w[cj] == pytest.approx(
                small_design.cell_w[ci]
            )


class TestIncrementalReturnValues:
    def test_move_returns_match_full_reanalysis(
        self, small_design, legal_placement
    ):
        """The (WNS, TNS) pair returned by every trial move agrees with a
        full golden re-analysis, and the engine's verify() (which now
        cross-checks TNS too) stays green through the trial sequence."""
        lx, ly = legal_placement
        placer = TimingDrivenDetailedPlacer(small_design)
        timer = placer.timer
        timer.reset(lx, ly)
        rng = np.random.default_rng(8)
        movable = np.nonzero(~small_design.cell_fixed)[0]
        for _ in range(6):
            ci = int(rng.choice(movable))
            nx = timer.x[ci] + rng.normal(0, 4)
            ny = timer.y[ci]
            wns, tns = timer.move([ci], [nx], [ny])
            ref = run_sta(small_design, timer.x, timer.y)
            assert wns == pytest.approx(ref.wns_setup, abs=1e-6)
            assert tns == pytest.approx(ref.tns_setup, abs=1e-5)
            assert timer.verify()
