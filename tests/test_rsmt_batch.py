"""Equivalence tests: batched RSMT kernels vs the scalar reference path.

The degree-bucketed kernels in ``repro.route.batch`` must emit trees
bit-identical to per-net :func:`repro.route.rsmt.build_rsmt` (same node
order, same parents, same coordinate owners), because the dirty-net
splice path mixes trees from both and checkpoint restoration replays
construction from coordinates alone.
"""

import numpy as np
import pytest

from repro.route.batch import batched_one_steiner, batched_prim, build_rsmt_batch
from repro.route.rsmt import (
    _prim_edges,
    _prune_leaf_steiners,
    build_forest,
    build_rsmt,
    build_trees,
    build_trees_for_nets,
)


def _trees_identical(a, b) -> bool:
    return (
        np.array_equal(a.x, b.x)
        and np.array_equal(a.y, b.y)
        and np.array_equal(a.parent, b.parent)
        and np.array_equal(a.pins, b.pins)
        and np.array_equal(a.owner_x, b.owner_x)
        and np.array_equal(a.owner_y, b.owner_y)
        and a.root == b.root
    )


def _random_nets(rng, n_nets, degree, coord_pool=None):
    """Random nets of one degree; small int coords force ties/duplicates."""
    nets = []
    for k in range(n_nets):
        if coord_pool is not None:
            x = rng.choice(coord_pool, degree).astype(float)
            y = rng.choice(coord_pool, degree).astype(float)
        else:
            x = rng.integers(0, 40, degree).astype(float)
            y = rng.integers(0, 40, degree).astype(float)
        pins = np.arange(k * degree, (k + 1) * degree, dtype=np.int64)
        driver = int(rng.integers(0, degree))
        nets.append((x, y, pins, driver))
    return nets


class TestBatchedPrim:
    def test_matches_scalar_prim_rows(self):
        rng = np.random.default_rng(11)
        for n in (2, 3, 5, 9):
            X = rng.integers(0, 30, (17, n)).astype(float)
            Y = rng.integers(0, 30, (17, n)).astype(float)
            src, dst, total = batched_prim(X, Y)
            for r in range(len(X)):
                edges, length = _prim_edges(X[r], Y[r])
                assert [(int(s), int(d)) for s, d in zip(src[r], dst[r])] == edges
                assert total[r] == length  # bit-identical sums

    def test_degenerate_single_column(self):
        src, dst, total = batched_prim(np.zeros((4, 1)), np.zeros((4, 1)))
        assert src.shape == (4, 0) and dst.shape == (4, 0)
        assert np.all(total == 0.0)


class TestBatchedOneSteiner:
    def test_coincident_candidates_masked_not_dropped(self):
        # All pins on a line: every Hanan candidate coincides with a pin,
        # so no insertion may happen (the scalar path drops them all).
        X = np.array([[0.0, 5.0, 9.0, 12.0]])
        Y = np.array([[2.0, 2.0, 2.0, 2.0]])
        XS, YS, n_ins, _, _ = batched_one_steiner(X, Y)
        assert n_ins[0] == 0


@pytest.mark.parametrize("degree", [2, 3, 4, 5, 6, 7, 8])
class TestBatchEquivalence:
    def test_random_nets_bit_identical(self, degree):
        rng = np.random.default_rng(100 + degree)
        nets = _random_nets(rng, 40, degree)
        trees = build_rsmt_batch(
            [n[0] for n in nets],
            [n[1] for n in nets],
            [n[2] for n in nets],
            [n[3] for n in nets],
        )
        for (x, y, pins, driver), tree in zip(nets, trees):
            ref = build_rsmt(x, y, pins, driver_local=driver)
            assert _trees_identical(tree, ref)
            tree.validate()

    def test_duplicate_and_collinear_pins_bit_identical(self, degree):
        # A 3-value coordinate pool makes duplicate points, collinear
        # runs and argmin ties the rule rather than the exception.
        rng = np.random.default_rng(200 + degree)
        nets = _random_nets(
            rng, 40, degree, coord_pool=np.array([0.0, 4.0, 9.0])
        )
        trees = build_rsmt_batch(
            [n[0] for n in nets],
            [n[1] for n in nets],
            [n[2] for n in nets],
            [n[3] for n in nets],
        )
        for (x, y, pins, driver), tree in zip(nets, trees):
            ref = build_rsmt(x, y, pins, driver_local=driver)
            assert _trees_identical(tree, ref)


class TestScalarFallbacks:
    def test_pruned_degree_falls_back_to_scalar(self):
        # degree 9 exceeds max_candidates=64 (81 Hanan candidates), so
        # the batch must route through the scalar pruning heuristic.
        rng = np.random.default_rng(9)
        nets = _random_nets(rng, 6, 9)
        trees = build_rsmt_batch(
            [n[0] for n in nets],
            [n[1] for n in nets],
            [n[2] for n in nets],
            [n[3] for n in nets],
        )
        for (x, y, pins, driver), tree in zip(nets, trees):
            ref = build_rsmt(x, y, pins, driver_local=driver)
            assert _trees_identical(tree, ref)

    def test_big_net_mst_path(self):
        rng = np.random.default_rng(31)
        nets = _random_nets(rng, 4, 30)  # > max_steiner_degree: plain MST
        trees = build_rsmt_batch(
            [n[0] for n in nets],
            [n[1] for n in nets],
            [n[2] for n in nets],
            [n[3] for n in nets],
        )
        for (x, y, pins, driver), tree in zip(nets, trees):
            ref = build_rsmt(x, y, pins, driver_local=driver)
            assert _trees_identical(tree, ref)
            assert tree.n_nodes == 30  # no Steiner points inserted


class TestDesignLevel:
    def test_build_trees_batched_equals_scalar(self, small_design):
        rng = np.random.default_rng(77)
        x = rng.uniform(0, 120, small_design.n_cells)
        y = rng.uniform(0, 120, small_design.n_cells)
        scalar = build_trees(small_design, x, y, batched=False)
        batched = build_trees(small_design, x, y, batched=True)
        assert len(scalar) == len(batched)
        for a, b in zip(scalar, batched):
            if a is None or b is None:
                assert a is None and b is None
            else:
                assert _trees_identical(a, b)

    def test_build_forest_batched_equals_scalar(self, small_design):
        rng = np.random.default_rng(78)
        x = rng.uniform(0, 120, small_design.n_cells)
        y = rng.uniform(0, 120, small_design.n_cells)
        fs = build_forest(small_design, x, y, batched=False)
        fb = build_forest(small_design, x, y, batched=True)
        for attr in (
            "parent",
            "node_net",
            "node_pin",
            "owner_x_pin",
            "owner_y_pin",
            "depth",
            "node_offset",
            "pin_node",
            "is_root",
        ):
            assert np.array_equal(getattr(fs, attr), getattr(fb, attr)), attr

    def test_build_trees_for_nets_subset(self, small_design):
        rng = np.random.default_rng(79)
        px, py = small_design.pin_positions()
        subset = [ni for ni in range(small_design.n_nets) if ni % 3 == 0]
        by_net = build_trees_for_nets(small_design, px, py, subset)
        full = build_trees(small_design, batched=True)
        for ni, tree in by_net.items():
            assert _trees_identical(tree, full[ni])
        # Unroutable nets are silently skipped, never None entries.
        assert all(t is not None for t in by_net.values())

    def test_tree_pins_do_not_alias_design_csr(self, small_design):
        trees = build_trees(small_design, batched=True)
        for tree in trees:
            if tree is not None:
                assert not np.shares_memory(tree.pins, small_design.net2pin)


class TestPruneLeafSteiners:
    def test_chain_of_dangling_steiners_peels(self):
        # 2 pins + 3 Steiner nodes hanging off pin 1 in a chain; every
        # Steiner has degree <= 1 after its child peels.
        xs = np.array([0.0, 10.0, 11.0, 12.0, 13.0])
        ys = np.zeros(5)
        edges = [(0, 1), (1, 2), (2, 3), (3, 4)]
        rx, ry, redges, original = _prune_leaf_steiners(xs, ys, edges, 2)
        assert list(original) == [0, 1]
        assert redges.tolist() == [[0, 1]]

    def test_degree_stress_linear_scaling(self):
        # A star of S dangling Steiner leaves peels in ONE iteration;
        # the vectorised peel must handle thousands without quadratic
        # membership scans (this finishes in milliseconds).
        import time

        s = 4000
        xs = np.concatenate([[0.0, 1.0], np.linspace(2, 3, s)])
        ys = np.zeros(s + 2)
        edges = [(0, 1)] + [(1, 2 + i) for i in range(s)]
        t0 = time.perf_counter()
        rx, ry, redges, original = _prune_leaf_steiners(xs, ys, edges, 2)
        elapsed = time.perf_counter() - t0
        assert list(original) == [0, 1]
        assert len(redges) == 1
        assert elapsed < 0.5  # quadratic scans took seconds at this size

    def test_internal_steiner_survives(self):
        xs = np.array([0.0, 2.0, 1.0, 1.0, 1.0])
        ys = np.array([1.0, 1.0, 0.0, 2.0, 1.0])
        edges = [(0, 4), (1, 4), (2, 4), (3, 4)]
        rx, ry, redges, original = _prune_leaf_steiners(xs, ys, edges, 4)
        assert len(rx) == 5  # the hub Steiner keeps degree 4
        assert len(redges) == 4
