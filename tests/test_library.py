"""Unit tests for the standard-cell library model."""

import numpy as np
import pytest

from repro.netlist import (
    ArcKind,
    CellType,
    FALL,
    PinDirection,
    PinSpec,
    RISE,
    TimingArc,
    Unateness,
    default_library,
)
from repro.netlist.library import make_constraint_tables, make_delay_tables


class TestUnateness:
    def test_positive_unate_maps_same_edge(self):
        assert Unateness.POSITIVE.transition_sources(RISE) == (RISE,)
        assert Unateness.POSITIVE.transition_sources(FALL) == (FALL,)

    def test_negative_unate_flips_edge(self):
        assert Unateness.NEGATIVE.transition_sources(RISE) == (FALL,)
        assert Unateness.NEGATIVE.transition_sources(FALL) == (RISE,)

    def test_non_unate_takes_both(self):
        assert set(Unateness.NON_UNATE.transition_sources(RISE)) == {RISE, FALL}


class TestArcKind:
    def test_delay_arc_classification(self):
        assert ArcKind.COMBINATIONAL.is_delay_arc
        assert ArcKind.CLOCK_TO_Q.is_delay_arc
        assert not ArcKind.SETUP.is_delay_arc
        assert not ArcKind.HOLD.is_delay_arc


class TestDefaultLibrary:
    def test_contains_expected_cells(self, library):
        for name in ("INV_X1", "NAND2_X1", "XOR2_X1", "DFF_X1", "BUF_X1"):
            assert name in library

    def test_dff_is_sequential_with_setup_and_hold(self, library):
        dff = library["DFF_X1"]
        assert dff.is_sequential
        kinds = {arc.kind for arc in dff.arcs}
        assert ArcKind.CLOCK_TO_Q in kinds
        assert ArcKind.SETUP in kinds
        assert ArcKind.HOLD in kinds
        assert dff.pin("CK").is_clock

    def test_inverter_is_negative_unate(self, library):
        arc = library["INV_X1"].delay_arcs()[0]
        assert arc.unateness is Unateness.NEGATIVE

    def test_xor_is_non_unate(self, library):
        arc = library["XOR2_X1"].delay_arcs()[0]
        assert arc.unateness is Unateness.NON_UNATE

    def test_cell_geometry_positive(self, library):
        for cell in library:
            assert cell.width > 0
            assert cell.height > 0
            assert cell.area == pytest.approx(cell.width * cell.height)

    def test_every_delay_arc_has_four_tables(self, library):
        for cell in library:
            for arc in cell.delay_arcs():
                for t in (RISE, FALL):
                    assert arc.delay_lut(t) is not None
                    assert arc.transition_lut(t) is not None

    def test_input_pins_have_capacitance(self, library):
        for cell in library:
            for pin in cell.input_pins:
                assert pin.capacitance > 0

    def test_stronger_drive_has_lower_delay_at_high_load(self, library):
        weak = library["INV_X1"].delay_arcs()[0].delay_lut(RISE)
        strong = library["INV_X4"].delay_arcs()[0].delay_lut(RISE)
        assert strong.lookup(20.0, 50.0) < weak.lookup(20.0, 50.0)

    def test_pin_lookup_error(self, library):
        with pytest.raises(KeyError):
            library["INV_X1"].pin("nonexistent")

    def test_duplicate_cell_rejected(self, library):
        with pytest.raises(ValueError):
            library.add(library["INV_X1"])


class TestCharacterisation:
    def test_delay_increases_with_load(self):
        cr, cf, tr, tf = make_delay_tables(10.0, 3.0, 0.08, 8.0, 2.7)
        low = cr.lookup(16.0, 1.0)
        high = cr.lookup(16.0, 50.0)
        assert high > low

    def test_delay_increases_with_slew(self):
        cr, *_ = make_delay_tables(10.0, 3.0, 0.08, 8.0, 2.7)
        assert cr.lookup(200.0, 4.0) > cr.lookup(4.0, 4.0)

    def test_fall_tables_slower_than_rise(self):
        cr, cf, tr, tf = make_delay_tables(10.0, 3.0, 0.08, 8.0, 2.7)
        assert cf.lookup(16.0, 8.0) > cr.lookup(16.0, 8.0)
        assert tf.lookup(16.0, 8.0) > tr.lookup(16.0, 8.0)

    def test_constraint_tables_positive(self):
        rc, fc = make_constraint_tables(12.0)
        assert rc.lookup(20.0, 20.0) > 0
        assert fc.lookup(20.0, 20.0) > rc.lookup(20.0, 20.0)


class TestTimingArcAccessors:
    def test_missing_lut_raises(self):
        arc = TimingArc("A", "Y", ArcKind.COMBINATIONAL)
        with pytest.raises(ValueError):
            arc.delay_lut(RISE)
        with pytest.raises(ValueError):
            arc.transition_lut(FALL)
        with pytest.raises(ValueError):
            arc.constraint_lut(RISE)

    def test_celltype_arc_filters(self, library):
        dff = library["DFF_X1"]
        assert len(dff.delay_arcs()) == 1
        assert len(dff.check_arcs()) == 2
