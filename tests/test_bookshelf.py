"""Unit tests for Bookshelf placement-format I/O."""

import os

import numpy as np
import pytest

from repro.netlist import (
    load_placement,
    read_bookshelf,
    save_placement,
    write_bookshelf,
)


@pytest.fixture()
def exported(tmp_path, small_design):
    aux = write_bookshelf(small_design, str(tmp_path), name="exp")
    return aux, small_design


class TestExport:
    def test_all_files_written(self, exported, tmp_path):
        aux, design = exported
        for ext in ("aux", "nodes", "nets", "pl", "scl"):
            assert os.path.exists(os.path.join(str(tmp_path), f"exp.{ext}"))

    def test_read_back_counts(self, exported):
        aux, design = exported
        data = read_bookshelf(aux)
        assert data.num_nodes == design.n_cells
        assert data.num_nets == design.n_nets
        assert data.num_pins == design.n_pins

    def test_terminals_marked(self, exported):
        aux, design = exported
        data = read_bookshelf(aux)
        n_terminals = sum(data.node_terminal)
        assert n_terminals == int(np.count_nonzero(design.cell_fixed))

    def test_geometry_preserved(self, exported):
        aux, design = exported
        data = read_bookshelf(aux)
        index = {n: i for i, n in enumerate(data.node_name)}
        for i in range(design.n_cells):
            j = index[design.cell_name[i]]
            assert data.node_width[j] == pytest.approx(design.cell_w[i])
            assert data.node_height[j] == pytest.approx(design.cell_h[i])

    def test_positions_roundtrip_via_pl(self, exported):
        aux, design = exported
        data = read_bookshelf(aux)
        index = {n: i for i, n in enumerate(data.node_name)}
        for i in range(design.n_cells):
            j = index[design.cell_name[i]]
            # Bookshelf stores lower-left corners.
            assert data.node_x[j] == pytest.approx(
                design.cell_x[i] - 0.5 * design.cell_w[i], abs=1e-5
            )

    def test_net_pin_offsets_preserved(self, exported):
        aux, design = exported
        data = read_bookshelf(aux)
        total = 0
        for pins in data.net_pins:
            total += len(pins)
            for node, direction, xoff, yoff in pins:
                assert direction in ("I", "O")
        assert total == design.n_pins

    def test_scl_rows(self, exported):
        aux, design = exported
        data = read_bookshelf(aux)
        xl, yl, xh, yh = design.die
        assert len(data.rows) == int((yh - yl) / design.row_height)
        assert data.rows[0].height == pytest.approx(design.row_height)


class TestPlacementRoundTrip:
    def test_save_load_identity(self, tmp_path, small_design):
        rng = np.random.default_rng(0)
        x = small_design.cell_x + rng.normal(0, 2, small_design.n_cells)
        y = small_design.cell_y + rng.normal(0, 2, small_design.n_cells)
        path = str(tmp_path / "place.pl")
        save_placement(small_design, x, y, path)
        x2, y2 = load_placement(small_design, path)
        np.testing.assert_allclose(x2, x, atol=1e-5)
        np.testing.assert_allclose(y2, y, atol=1e-5)

    def test_load_ignores_unknown_nodes(self, tmp_path, small_design):
        path = str(tmp_path / "p.pl")
        with open(path, "w") as fh:
            fh.write("UCLA pl 1.0\nghost_cell 1.0 2.0 : N\n")
        x, y = load_placement(small_design, path)
        np.testing.assert_allclose(x, small_design.cell_x)

    def test_malformed_aux_rejected(self, tmp_path):
        path = str(tmp_path / "bad.aux")
        with open(path, "w") as fh:
            fh.write("no colon here\n")
        with pytest.raises(ValueError):
            read_bookshelf(path)
