"""The midiblue tier: 50k+-cell vectorized-engine designs.

midiblue designs must be structurally valid (every check in
``repro.runtime.validate``), levelize without combinational cycles, be
deterministic per name, and run a few placer iterations in all three
Table 3 modes.  Loaded once per test session through the bundle cache -
generation at this scale is the expensive part.
"""

import numpy as np
import pytest

from repro.harness.runners import MODES, run_mode
from repro.harness.suite import MIDIBLUE, design_spec, load_design
from repro.netlist.cache import load_bundle
from repro.place.placer import PlacerOptions
from repro.runtime.validate import validate_design


@pytest.fixture(scope="module")
def midiblue50(tmp_path_factory):
    """The ~50k-cell design + prebuilt graph, via a module-local cache."""
    cdir = str(tmp_path_factory.mktemp("midiblue_cache"))
    bundle, _ = load_bundle(design_spec("midiblue50"), cdir)
    return bundle


class TestRegistry:
    def test_three_sizes_registered(self):
        assert [e.name for e in MIDIBLUE] == [
            "midiblue50",
            "midiblue120",
            "midiblue500",
        ]
        assert [e.n_cells for e in MIDIBLUE] == [50_000, 120_000, 500_000]

    def test_specs_use_the_vectorized_engine(self):
        for entry in MIDIBLUE:
            spec = design_spec(entry.name)
            assert spec.engine == "vectorized"
            assert spec.seed == entry.seed

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="midiblue50"):
            design_spec("nosuchdesign")


class TestMidiblue50:
    def test_scale(self, midiblue50):
        design = midiblue50.design
        # Within 25% of the 50k movable-cell target (ports/FF/collector
        # overhead lands on top of n_cells).
        assert 50_000 <= design.n_cells <= 75_000

    def test_validates_clean(self, midiblue50):
        report = validate_design(
            midiblue50.design, graph=midiblue50.graph
        )
        assert report.ok, report.format()

    def test_levelizes_acyclic(self, midiblue50):
        graph = midiblue50.graph
        assert graph.n_levels > 1
        # Every timing arc goes strictly forward in level order.
        assert np.all(
            graph.level[graph.c_dst] >= graph.level[graph.c_src]
        )

    def test_deterministic_per_name(self):
        a = load_design("midiblue50")
        b = load_design("midiblue50")
        np.testing.assert_array_equal(a.cell_x, b.cell_x)
        np.testing.assert_array_equal(a.pin2net, b.pin2net)

    @pytest.mark.parametrize("mode", MODES)
    def test_five_placer_iterations(self, midiblue50, mode):
        record = run_mode(
            midiblue50.design,
            mode,
            placer_options=PlacerOptions(max_iters=5),
            sta_graph=midiblue50.graph,
        )
        assert record.iterations >= 1
        assert np.isfinite(record.wns)
        assert np.isfinite(record.hpwl) and record.hpwl > 0
        assert record.x.shape == (midiblue50.design.n_cells,)
