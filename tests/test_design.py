"""Unit tests for the Design / DesignBuilder data model."""

import numpy as np
import pytest

from repro.netlist import Constraints, DesignBuilder, PinDirection


class TestBuilderBasics:
    def test_simple_design(self, tiny_builder):
        b = tiny_builder
        b.add_cell("u1", "INV_X1")
        b.add_net("n_in", ["a", "u1/A"])
        b.add_net("n_out", ["u1/Y", "z"])
        d = b.build()
        assert d.n_cells == 4  # clk, a, z, u1
        assert d.n_nets == 2
        assert d.n_pins == 2 + 1 + 2  # INV has 2 pins, ports 1 each

    def test_duplicate_cell_rejected(self, tiny_builder):
        tiny_builder.add_cell("u1", "INV_X1")
        with pytest.raises(ValueError, match="duplicate cell"):
            tiny_builder.add_cell("u1", "INV_X1")

    def test_duplicate_net_rejected(self, tiny_builder):
        tiny_builder.add_cell("u1", "INV_X1")
        tiny_builder.add_net("n", ["a", "u1/A"])
        with pytest.raises(ValueError, match="duplicate net"):
            tiny_builder.add_net("n", ["u1/Y", "z"])

    def test_multiple_drivers_rejected(self, tiny_builder):
        tiny_builder.add_cell("u1", "INV_X1")
        tiny_builder.add_cell("u2", "INV_X1")
        with pytest.raises(ValueError, match="multiple drivers"):
            tiny_builder.add_net("n", ["u1/Y", "u2/Y"])
            tiny_builder.build()

    def test_pin_double_connection_rejected(self, tiny_builder):
        tiny_builder.add_cell("u1", "INV_X1")
        tiny_builder.add_net("n1", ["a", "u1/A"])
        tiny_builder.add_net("n2", ["u1/A"])
        with pytest.raises(ValueError, match="connected to two nets"):
            tiny_builder.build()

    def test_unknown_cell_in_net_rejected(self, tiny_builder):
        tiny_builder.add_net("n", ["ghost/A"])
        with pytest.raises(KeyError):
            tiny_builder.build()

    def test_unknown_pin_rejected(self, tiny_builder):
        tiny_builder.add_cell("u1", "INV_X1")
        tiny_builder.add_net("n", ["u1/Q"])
        with pytest.raises(KeyError):
            tiny_builder.build()

    def test_bare_port_reference_resolves(self, tiny_builder):
        tiny_builder.add_cell("u1", "INV_X1")
        tiny_builder.add_net("n1", ["a", "u1/A"])
        tiny_builder.add_net("n2", ["u1/Y", "z"])
        d = tiny_builder.build()
        # "a" resolves to the port's O pin (a driver).
        ni = d.net_index("n1")
        assert d.net_driver[ni] >= 0
        assert d.pin_name[d.net_driver[ni]] == "a/O"


class TestDesignQueries:
    def test_pin_positions_follow_cells(self, chain_design):
        d = chain_design
        x = d.cell_x.copy()
        y = d.cell_y.copy()
        px0, py0 = d.pin_positions()
        x2 = x + 3.0
        px1, py1 = d.pin_positions(x2, y)
        np.testing.assert_allclose(px1 - px0, 3.0)
        np.testing.assert_allclose(py1, py0)

    def test_net_pins_and_degree(self, chain_design):
        d = chain_design
        for ni in range(d.n_nets):
            pins = d.net_pins(ni)
            assert len(pins) == d.net_degree(ni)
            assert d.net_driver[ni] in pins

    def test_clock_net_marked(self, chain_design):
        d = chain_design
        ni = d.net_index("clknet")
        assert d.net_is_clock[ni]
        assert not d.net_is_clock[d.net_index("n_d")]

    def test_ports_are_fixed_zero_area(self, chain_design):
        d = chain_design
        for i in range(d.n_cells):
            if d.cell_is_port[i]:
                assert d.cell_fixed[i]
                assert d.cell_w[i] == 0.0

    def test_stats(self, chain_design):
        s = chain_design.stats()
        assert s["cells"] == chain_design.n_cells
        assert s["pins"] == chain_design.n_pins

    def test_movable_area_excludes_fixed(self, chain_design):
        d = chain_design
        manual = float(
            np.sum((d.cell_w * d.cell_h)[~d.cell_fixed])
        )
        assert d.movable_area == pytest.approx(manual)

    def test_cell_index_roundtrip(self, chain_design):
        d = chain_design
        for i, name in enumerate(d.cell_name):
            assert d.cell_index(name) == i

    def test_repr(self, chain_design):
        assert "chain" in repr(chain_design)


class TestConstraints:
    def test_defaults(self):
        c = Constraints(clock_period=500.0)
        assert c.input_delay("whatever") == c.default_input_delay
        assert c.output_load("x") == c.default_output_load

    def test_overrides(self):
        c = Constraints(
            clock_period=500.0,
            input_delays={"a": 17.0},
            input_slews={"a": 33.0},
            output_delays={"z": 5.0},
            output_loads={"z": 9.0},
        )
        assert c.input_delay("a") == 17.0
        assert c.input_slew("a") == 33.0
        assert c.output_delay("z") == 5.0
        assert c.output_load("z") == 9.0
