"""Unit tests for HPWL and the weighted-average wirelength model."""

import numpy as np
import pytest

from repro.place import WAWirelength, hpwl


class TestHPWL:
    def test_two_pin_net_manhattan_box(self, chain_design):
        d = chain_design
        val = hpwl(d)
        assert val > 0
        # Manual recomputation.
        px, py = d.pin_positions()
        manual = 0.0
        for ni in range(d.n_nets):
            pins = d.net_pins(ni)
            manual += px[pins].max() - px[pins].min()
            manual += py[pins].max() - py[pins].min()
        assert val == pytest.approx(manual)

    def test_net_weights_scale(self, chain_design):
        d = chain_design
        w = np.full(d.n_nets, 2.0)
        assert hpwl(d, net_weights=w) == pytest.approx(2.0 * hpwl(d))

    def test_translation_invariance(self, small_design):
        d = small_design
        base = hpwl(d)
        shifted = hpwl(d, d.cell_x + 11.0, d.cell_y - 4.0)
        assert shifted == pytest.approx(base)


class TestWAWirelength:
    def test_wa_lower_bounds_hpwl(self, small_design, spread_positions):
        """WA-max underestimates max and WA-min overestimates min."""
        d = small_design
        x, y = spread_positions
        wa = WAWirelength(d)
        smooth, _, _ = wa.evaluate(x, y, gamma=2.0)
        assert smooth <= hpwl(d, x, y) + 1e-9

    def test_small_gamma_approaches_hpwl(self, small_design, spread_positions):
        d = small_design
        x, y = spread_positions
        wa = WAWirelength(d)
        smooth, _, _ = wa.evaluate(x, y, gamma=0.05)
        assert smooth == pytest.approx(hpwl(d, x, y), rel=0.02)

    def test_gradient_matches_finite_difference(self, small_design, spread_positions):
        d = small_design
        x, y = spread_positions
        wa = WAWirelength(d)
        _, gx, gy = wa.evaluate(x, y, gamma=2.0)
        rng = np.random.default_rng(0)
        movable = np.nonzero(~d.cell_fixed)[0]
        eps = 1e-6
        for ci in rng.choice(movable, 10, replace=False):
            xp, xm = x.copy(), x.copy()
            xp[ci] += eps
            xm[ci] -= eps
            fd = (
                wa.evaluate(xp, y, 2.0)[0] - wa.evaluate(xm, y, 2.0)[0]
            ) / (2 * eps)
            assert gx[ci] == pytest.approx(fd, rel=1e-4, abs=1e-8)

    def test_weighted_gradient_scales(self, small_design, spread_positions):
        d = small_design
        x, y = spread_positions
        wa = WAWirelength(d)
        w = np.full(d.n_nets, 3.0)
        _, gx1, gy1 = wa.evaluate(x, y, 2.0)
        _, gx3, gy3 = wa.evaluate(x, y, 2.0, net_weights=w)
        np.testing.assert_allclose(gx3, 3.0 * gx1, rtol=1e-12)
        np.testing.assert_allclose(gy3, 3.0 * gy1, rtol=1e-12)

    def test_gradient_sums_to_zero_per_axis(self, small_design, spread_positions):
        """Wirelength is translation invariant, so gradients sum to ~0."""
        d = small_design
        x, y = spread_positions
        wa = WAWirelength(d)
        _, gx, gy = wa.evaluate(x, y, 2.0)
        assert gx.sum() == pytest.approx(0.0, abs=1e-8)
        assert gy.sum() == pytest.approx(0.0, abs=1e-8)

    def test_gradient_pulls_outlier_inward(self, library):
        from repro.netlist import DesignBuilder

        b = DesignBuilder("pair", library, die=(0, 0, 100, 20))
        b.add_input("clk", x=0, y=0)
        b.add_input("a", x=0.0, y=10.0)
        b.add_cell("u1", "INV_X1", x=90.0, y=10.0)
        b.add_net("n", ["a", "u1/A"])
        d = b.build()
        wa = WAWirelength(d)
        _, gx, _ = wa.evaluate(d.cell_x, d.cell_y, 1.0)
        u1 = d.cell_index("u1")
        assert gx[u1] > 0  # moving right increases wirelength
