"""Tests for the per-stage profiling layer (:mod:`repro.perf`)."""

import numpy as np
import pytest

from repro.core import DifferentiableTimer
from repro.perf import PROFILER, Timer, get_profiler, profile_enabled_by_env
from repro.sta import IncrementalTimer


@pytest.fixture()
def profiler():
    """The shared profiler, enabled and reset for one test."""
    was_enabled = PROFILER.enabled
    PROFILER.reset()
    PROFILER.enable()
    yield PROFILER
    PROFILER.reset()
    PROFILER.enabled = was_enabled


class TestTimer:
    def test_stage_accumulates_time_and_calls(self):
        t = Timer(enabled=True)
        for _ in range(3):
            with t.stage("work"):
                pass
        stats = t.stats()
        assert stats["work"]["calls"] == 3
        assert stats["work"]["total_s"] >= 0.0
        assert stats["work"]["mean_s"] == pytest.approx(
            stats["work"]["total_s"] / 3
        )

    def test_disabled_timer_records_nothing(self):
        t = Timer()
        with t.stage("ignored"):
            pass
        assert t.stats() == {}

    def test_reset_clears_but_keeps_enabled(self):
        t = Timer(enabled=True)
        with t.stage("a"):
            pass
        t.reset()
        assert t.stats() == {}
        assert t.enabled

    def test_add_direct(self):
        t = Timer(enabled=True)
        t.add("manual", 0.5, calls=2)
        assert t.stats()["manual"] == {
            "calls": 2,
            "total_s": 0.5,
            "mean_s": 0.25,
        }

    def test_report_lists_every_stage(self):
        t = Timer(enabled=True)
        t.add("alpha", 0.1)
        t.add("beta", 0.2)
        text = t.report("unit")
        assert "alpha" in text and "beta" in text and "unit" in text

    def test_report_handles_empty(self):
        assert "no stages" in Timer(enabled=True).report()

    def test_env_toggle(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert profile_enabled_by_env()
        assert Timer().enabled
        monkeypatch.setenv("REPRO_PROFILE", "0")
        assert not profile_enabled_by_env()
        monkeypatch.delenv("REPRO_PROFILE")
        assert not Timer().enabled

    def test_get_profiler_is_shared(self):
        assert get_profiler() is PROFILER


class TestThreadedStages:
    def test_tns_wns_with_grad_records_every_stage(
        self, profiler, small_design, spread_positions
    ):
        """One forward+backward call must hit each instrumented kernel."""
        x, y = spread_positions
        DifferentiableTimer(small_design).tns_wns_with_grad(x, y)
        stats = profiler.stats()
        for stage in (
            "route.build_forest",
            "difftimer.forward.elmore",
            "difftimer.forward.levels",
            "difftimer.forward.net_level",
            "difftimer.forward.cell_level",
            "difftimer.forward.endpoints",
            "difftimer.backward.levels",
            "difftimer.backward.cell_level",
            "difftimer.backward.net_level",
            "difftimer.backward.elmore",
        ):
            assert stage in stats, f"missing stage {stage}"
            assert stats[stage]["calls"] >= 1

    def test_incremental_move_records_stages(
        self, profiler, small_design, spread_positions
    ):
        x, y = spread_positions
        timer = IncrementalTimer(small_design)
        timer.reset(x, y)
        profiler.reset()
        ci = int(np.nonzero(~small_design.cell_fixed)[0][0])
        timer.move([ci], [x[ci] + 2.0], [y[ci] + 1.0])
        stats = profiler.stats()
        for stage in (
            "incremental.reroute",
            "incremental.sweep",
            "incremental.endpoints",
        ):
            assert stage in stats, f"missing stage {stage}"

    def test_disabled_profiler_stays_empty(
        self, small_design, spread_positions
    ):
        was_enabled = PROFILER.enabled
        PROFILER.disable()
        PROFILER.reset()
        try:
            x, y = spread_positions
            DifferentiableTimer(small_design).tns_wns_with_grad(x, y)
            assert PROFILER.stats() == {}
        finally:
            PROFILER.enabled = was_enabled
