"""Tests for the per-stage profiling layer (:mod:`repro.perf`)."""

import threading

import numpy as np
import pytest

from repro.core import DifferentiableTimer
from repro.perf import (
    PROFILER,
    Timer,
    format_span_tree,
    get_profiler,
    profile_enabled_by_env,
)
from repro.sta import IncrementalTimer


@pytest.fixture()
def profiler():
    """The shared profiler, enabled and reset for one test."""
    was_enabled = PROFILER.enabled
    PROFILER.reset()
    PROFILER.enable()
    yield PROFILER
    PROFILER.reset()
    PROFILER.enabled = was_enabled


class TestTimer:
    def test_stage_accumulates_time_and_calls(self):
        t = Timer(enabled=True)
        for _ in range(3):
            with t.stage("work"):
                pass
        stats = t.stats()
        assert stats["work"]["calls"] == 3
        assert stats["work"]["total_s"] >= 0.0
        assert stats["work"]["mean_s"] == pytest.approx(
            stats["work"]["total_s"] / 3
        )

    def test_disabled_timer_records_nothing(self):
        t = Timer()
        with t.stage("ignored"):
            pass
        assert t.stats() == {}

    def test_reset_clears_but_keeps_enabled(self):
        t = Timer(enabled=True)
        with t.stage("a"):
            pass
        t.reset()
        assert t.stats() == {}
        assert t.enabled

    def test_add_direct(self):
        t = Timer(enabled=True)
        t.add("manual", 0.5, calls=2)
        assert t.stats()["manual"] == {
            "calls": 2,
            "total_s": 0.5,
            "mean_s": 0.25,
        }

    def test_report_lists_every_stage(self):
        t = Timer(enabled=True)
        t.add("alpha", 0.1)
        t.add("beta", 0.2)
        text = t.report("unit")
        assert "alpha" in text and "beta" in text and "unit" in text

    def test_report_handles_empty(self):
        assert "no stages" in Timer(enabled=True).report()

    def test_env_toggle(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert profile_enabled_by_env()
        assert Timer().enabled
        monkeypatch.setenv("REPRO_PROFILE", "0")
        assert not profile_enabled_by_env()
        monkeypatch.delenv("REPRO_PROFILE")
        assert not Timer().enabled

    def test_get_profiler_is_shared(self):
        assert get_profiler() is PROFILER


class TestSpanTree:
    def test_nested_stages_build_tree_with_self_time(self):
        t = Timer(enabled=True)
        with t.stage("outer"):
            t.add("inner", 0.25)
            t.add("inner", 0.25)
        tree = t.tree()
        (outer,) = tree["children"]
        assert outer["name"] == "outer"
        assert outer["calls"] == 1
        (inner,) = outer["children"]
        assert inner["name"] == "inner"
        assert inner["calls"] == 2
        assert inner["total_s"] == pytest.approx(0.5)
        # Self-time is total minus children (synthetic child seconds can
        # exceed the parent's measured wall-clock).
        assert outer["self_s"] == pytest.approx(outer["total_s"] - 0.5)
        assert tree["name"] == "run"
        assert tree["total_s"] == pytest.approx(outer["total_s"])

    def test_flat_stats_aggregate_across_tree_positions(self):
        t = Timer(enabled=True)
        with t.stage("a"):
            t.add("shared", 0.1)
        with t.stage("b"):
            t.add("shared", 0.3)
        stats = t.stats()
        assert stats["shared"]["calls"] == 2
        assert stats["shared"]["total_s"] == pytest.approx(0.4)

    def test_two_threads_same_stage_name_sum_cleanly(self):
        """Regression: concurrent stages must not corrupt shared state."""
        t = Timer(enabled=True)
        n_per_thread = 200
        barrier = threading.Barrier(2)

        def worker():
            barrier.wait()
            for _ in range(n_per_thread):
                with t.stage("hot"):
                    t.add("leaf", 0.001)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        stats = t.stats()
        assert stats["hot"]["calls"] == 2 * n_per_thread
        assert stats["leaf"]["calls"] == 2 * n_per_thread
        assert stats["leaf"]["total_s"] == pytest.approx(
            2 * n_per_thread * 0.001
        )
        # Each thread's leaf spans nest under "hot", never interleave.
        tree = t.tree()
        (hot,) = tree["children"]
        assert [c["name"] for c in hot["children"]] == ["leaf"]

    def test_counters_attach_to_current_span(self):
        t = Timer(enabled=True)
        with t.stage("work"):
            t.incr("cache_hit")
            t.incr("cache_hit", 2)
        t.incr("top_level")
        assert t.counters() == {"cache_hit": 3, "top_level": 1}
        (work,) = [c for c in t.tree()["children"] if c["name"] == "work"]
        assert work["counters"] == {"cache_hit": 3}

    def test_counters_noop_when_disabled(self):
        t = Timer()
        t.incr("ignored")
        assert t.counters() == {}

    def test_span_report_indents_children(self):
        t = Timer(enabled=True)
        with t.stage("outer"):
            t.add("inner", 0.1)
        text = t.span_report("unit spans")
        lines = text.splitlines()
        assert "unit spans" in lines[0]
        outer_line = next(l for l in lines if l.startswith("outer"))
        inner_line = next(l for l in lines if "inner" in l)
        assert inner_line.startswith("  inner")
        assert outer_line.index("outer") < inner_line.index("inner")

    def test_format_span_tree_handles_empty(self):
        assert "no spans" in format_span_tree(Timer(enabled=True).tree())

    def test_reset_during_open_stage_is_safe(self):
        t = Timer(enabled=True)
        with t.stage("outer"):
            t.reset()
            with t.stage("inner"):
                pass
        stats = t.stats()
        # The re-accumulated spans land in the fresh tree without error.
        assert "inner" in stats and "outer" in stats


class TestThreadedStages:
    def test_tns_wns_with_grad_records_every_stage(
        self, profiler, small_design, spread_positions
    ):
        """One forward+backward call must hit each instrumented kernel."""
        x, y = spread_positions
        DifferentiableTimer(small_design).tns_wns_with_grad(x, y)
        stats = profiler.stats()
        for stage in (
            "route.build_forest",
            "difftimer.forward.elmore",
            "difftimer.forward.levels",
            "difftimer.forward.net_level",
            "difftimer.forward.cell_level",
            "difftimer.forward.endpoints",
            "difftimer.backward.levels",
            "difftimer.backward.cell_level",
            "difftimer.backward.net_level",
            "difftimer.backward.elmore",
        ):
            assert stage in stats, f"missing stage {stage}"
            assert stats[stage]["calls"] >= 1

    def test_incremental_move_records_stages(
        self, profiler, small_design, spread_positions
    ):
        x, y = spread_positions
        timer = IncrementalTimer(small_design)
        timer.reset(x, y)
        profiler.reset()
        ci = int(np.nonzero(~small_design.cell_fixed)[0][0])
        timer.move([ci], [x[ci] + 2.0], [y[ci] + 1.0])
        stats = profiler.stats()
        for stage in (
            "incremental.reroute",
            "incremental.sweep",
            "incremental.endpoints",
        ):
            assert stage in stats, f"missing stage {stage}"

    def test_disabled_profiler_stays_empty(
        self, small_design, spread_positions
    ):
        was_enabled = PROFILER.enabled
        PROFILER.disable()
        PROFILER.reset()
        try:
            x, y = spread_positions
            DifferentiableTimer(small_design).tns_wns_with_grad(x, y)
            assert PROFILER.stats() == {}
        finally:
            PROFILER.enabled = was_enabled
