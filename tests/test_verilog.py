"""Unit tests for the structural Verilog reader/writer."""

import numpy as np
import pytest

from repro.netlist import default_library
from repro.netlist.verilog import (
    VerilogError,
    parse_verilog,
    read_verilog_file,
    write_verilog,
    write_verilog_file,
)

SIMPLE = """
// a tiny pipeline
module top (a, b, clk, z);
  input a, b, clk;
  output z;
  wire n1, n2;
  NAND2_X1 u1 ( .A(a), .B(b), .Y(n1) );
  DFF_X1 ff0 ( .D(n1), .CK(clk), .Q(n2) );
  INV_X1 u2 ( .A(n2), .Y(z) );
endmodule
"""


class TestParse:
    def test_simple_module(self, library):
        d = parse_verilog(SIMPLE, library)
        assert d.name == "top"
        assert d.n_cells == 4 + 3  # ports a,b,clk,z + 3 instances
        assert d.n_nets == 6  # a, b, clk, n1, n2, z
        ni = d.net_index("n1")
        assert d.net_degree(ni) == 2

    def test_clock_autodetected(self, library):
        d = parse_verilog(SIMPLE, library)
        assert d.constraints.clock_port == "clk"
        clk_net = [ni for ni in range(d.n_nets) if d.net_is_clock[ni]]
        assert len(clk_net) == 1

    def test_block_comments_stripped(self, library):
        text = SIMPLE.replace("// a tiny pipeline", "/* multi\nline */")
        d = parse_verilog(text, library)
        assert d.n_cells == 7

    def test_unknown_cell_rejected(self, library):
        text = SIMPLE.replace("NAND2_X1", "MYSTERY_GATE")
        with pytest.raises(VerilogError, match="unknown cell"):
            parse_verilog(text, library)

    def test_unknown_pin_rejected(self, library):
        text = SIMPLE.replace(".A(a)", ".QQ(a)")
        with pytest.raises(KeyError):
            parse_verilog(text, library)

    def test_missing_module_rejected(self, library):
        with pytest.raises(VerilogError, match="module"):
            parse_verilog("wire x;", library)

    def test_logic_assign_unsupported(self, library):
        text = SIMPLE.replace(
            "wire n1, n2;", "wire n1, n2;\n  assign z = n1 & n2;"
        )
        with pytest.raises(VerilogError, match="unsupported"):
            parse_verilog(text, library)

    def test_alias_assign_merges_nets(self, library):
        text = (
            "module t (a, z1, z2);\n"
            "  input a;\n"
            "  output z1, z2;\n"
            "  wire w;\n"
            "  assign z2 = w;\n"
            "  INV_X1 u1 ( .A(a), .Y(w) );\n"
            "  BUF_X1 u2 ( .A(w), .Y(z1) );\n"
            "endmodule\n"
        )
        d = parse_verilog(text, library)
        # w, u2/A and z2 are one electrical net.
        p = d.pin_name.index("u1/Y")
        ni = d.pin2net[p]
        members = {d.pin_name[q] for q in d.net_pins(ni)}
        assert members == {"u1/Y", "u2/A", "z2/I"}

    def test_unconnected_port_allowed(self, library):
        text = SIMPLE.replace(".B(b)", ".B()")
        d = parse_verilog(text, library)
        # b port exists but its net has only one pin -> dropped.
        assert "b" in d.cell_name


class TestRoundTrip:
    def test_simple_roundtrip(self, library):
        d1 = parse_verilog(SIMPLE, library)
        text = write_verilog(d1)
        d2 = parse_verilog(text, library)
        assert d2.n_cells == d1.n_cells
        assert d2.n_pins == d1.n_pins
        assert sorted(d2.cell_name) == sorted(d1.cell_name)

    def test_generated_design_roundtrip(self, small_design):
        text = write_verilog(small_design)
        d2 = parse_verilog(
            text,
            small_design.library,
            die=small_design.die,
            constraints=small_design.constraints,
        )
        assert d2.n_cells == small_design.n_cells
        assert d2.n_nets == small_design.n_nets
        assert d2.n_pins == small_design.n_pins
        # Connectivity equivalence: same pin set per net name.
        for ni in range(small_design.n_nets):
            name = small_design.net_name[ni]
            pins1 = sorted(
                small_design.pin_name[p] for p in small_design.net_pins(ni)
            )
            # Written net names are the original net names (or port names).
            # Find the net in d2 containing the first pin.
            p2 = d2.pin_name.index(pins1[0].replace("/O", "/O"))
            ni2 = d2.pin2net[p2]
            pins2 = sorted(d2.pin_name[p] for p in d2.net_pins(ni2))
            assert pins1 == pins2

    def test_timing_equivalence_after_roundtrip(self, small_design):
        """STA on the round-tripped netlist at identical positions matches."""
        from repro.sta import run_sta

        text = write_verilog(small_design)
        d2 = parse_verilog(
            text,
            small_design.library,
            die=small_design.die,
            constraints=small_design.constraints,
        )
        # Transfer positions by cell name.
        x = d2.cell_x.copy()
        y = d2.cell_y.copy()
        for ci in range(small_design.n_cells):
            j = d2.cell_index(small_design.cell_name[ci])
            x[j] = small_design.cell_x[ci]
            y[j] = small_design.cell_y[ci]
        r1 = run_sta(small_design)
        r2 = run_sta(d2, x, y)
        assert r2.wns_setup == pytest.approx(r1.wns_setup, abs=1e-6)
        assert r2.tns_setup == pytest.approx(r1.tns_setup, abs=1e-6)

    def test_file_roundtrip(self, tmp_path, library):
        d1 = parse_verilog(SIMPLE, library)
        path = str(tmp_path / "t.v")
        write_verilog_file(d1, path)
        d2 = read_verilog_file(path, library)
        assert d2.n_cells == d1.n_cells
