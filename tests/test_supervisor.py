"""Supervised suite execution: crash isolation, retry, quarantine.

The acceptance scenarios of the process-boundary robustness layer:

- a fault-free supervised suite is byte-identical to the legacy
  unsupervised fan-out (supervision is a wall-clock-only knob);
- a SIGKILL'd worker costs exactly its in-flight task one retry - every
  other task's metrics stay byte-identical and the suite completes;
- a hung worker is killed at the task timeout and its task retried;
- a persistently failing task is quarantined after ``max_retries`` and
  the suite still completes, with the quarantine recorded in telemetry;
- an unbuildable pool degrades to serial in-process execution;
- the legacy unsupervised path aborts with a typed error but salvages
  completed runs into a partial suite manifest.

Runs use tiny iteration counts - supervision must be invariant to the
workload, and these tests exercise scheduling, not placement quality.
"""

import json
import os

import numpy as np
import pytest

import repro.harness.supervisor as supervisor_mod
from repro.harness.parallel import (
    SUITE_MANIFEST_FILENAME,
    run_parallel,
    run_tasks,
    suite_metrics,
)
from repro.harness.supervisor import (
    PoolBrokenError,
    SupervisorError,
    SupervisorOptions,
    SuiteTask,
    TaskFailedError,
)


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    """Keep these tests hermetic: each sets its own REPRO_INJECT_FAULT."""
    monkeypatch.delenv("REPRO_INJECT_FAULT", raising=False)


def _tasks(n=3, max_iters=6, telemetry_dir=None):
    designs = ["miniblue4", "miniblue18", "miniblue4"]
    seeds = [0, 0, 1]
    return [
        SuiteTask(
            design=designs[i],
            mode="ours",
            seed=seeds[i],
            max_iters=max_iters,
            telemetry_dir=telemetry_dir,
        )
        for i in range(n)
    ]


def _assert_records_identical(a, b):
    for ra, rb in zip(a, b):
        np.testing.assert_array_equal(ra.x, rb.x)
        np.testing.assert_array_equal(ra.y, rb.y)
        assert (ra.wns, ra.tns, ra.hpwl) == (rb.wns, rb.tns, rb.hpwl)


class TestZeroFaultByteIdentity:
    def test_supervised_identical_to_unsupervised(self, tmp_path):
        tasks = _tasks()
        raw = run_parallel(tasks, jobs=2, supervise=False)
        sup, provenance = run_tasks(tasks, jobs=2, supervise=True)
        _assert_records_identical(raw, sup)
        assert provenance is None  # nothing intervened -> no provenance
        assert all(r.attempts == 1 for r in sup)

    def test_no_events_file_without_interventions(self, tmp_path):
        tasks = _tasks(telemetry_dir=str(tmp_path))
        run_parallel(tasks, jobs=2, supervise=True)
        assert not (tmp_path / "supervisor_events.jsonl").exists()


class TestCrashRecovery:
    def test_sigkilled_worker_retried_others_byte_identical(
        self, monkeypatch
    ):
        """Satellite: SIGKILL one worker mid-task; the suite completes,
        non-faulted tasks are byte-identical, the victim retried once."""
        tasks = _tasks()
        clean = run_parallel(tasks, jobs=2)
        monkeypatch.setenv("REPRO_INJECT_FAULT", "worker_kill:1")
        records, result = run_tasks(tasks, jobs=2)
        _assert_records_identical(clean, records)
        assert [r.attempts for r in records] == [1, 2, 1]
        assert result["worker_respawns"] == 1
        assert result["quarantined"] == []
        (outcome,) = result["tasks"]
        assert outcome["run_id"] == "miniblue18_ours_s0"
        assert outcome["failures"][0]["failure"] == "crash"

    def test_timeout_kills_hung_worker_and_retries(self, monkeypatch):
        monkeypatch.setenv("REPRO_INJECT_FAULT", "worker_hang:0@60")
        tasks = _tasks(2)
        records, result = run_tasks(
            tasks,
            jobs=2,
            supervisor_options=SupervisorOptions(task_timeout=5.0),
        )
        assert records[0].attempts == 2 and records[1].attempts == 1
        (outcome,) = result["tasks"]
        assert outcome["failures"][0]["failure"] == "timeout"

    def test_serial_path_retries_task_exception(self, monkeypatch):
        monkeypatch.setenv("REPRO_INJECT_FAULT", "task_exc:0")
        records, result = run_tasks(
            _tasks(2),
            jobs=1,
            supervisor_options=SupervisorOptions(backoff_base=0.001),
        )
        assert [r.attempts for r in records] == [2, 1]
        assert result["retries"] == 1

    def test_bundle_corruption_classified_and_healed(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_INJECT_FAULT", "bundle_corrupt_midrun:0")
        records, result = run_tasks(
            _tasks(1),
            jobs=1,
            cache_dir=str(tmp_path),
            supervisor_options=SupervisorOptions(backoff_base=0.001),
        )
        assert records[0].attempts == 2
        (outcome,) = result["tasks"]
        assert outcome["failures"][0]["failure"] == "cache-corrupt"
        # The retry re-read the corrupted file and regenerated it.
        assert records[0].design_cache["corrupt_recovered"]


class TestQuarantine:
    def test_poisoned_task_quarantined_suite_completes(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_INJECT_FAULT", "task_exc:0@99")
        tasks = _tasks(3, telemetry_dir=str(tmp_path))
        records, result = run_tasks(
            tasks,
            jobs=2,
            supervisor_options=SupervisorOptions(
                max_retries=1, backoff_base=0.001
            ),
        )
        bad, ok1, ok2 = records
        assert bad.quarantined and bad.attempts == 2
        assert bad.stop_reason == "quarantined:exception"
        assert np.isnan(bad.wns) and bad.x.size == 0
        assert not ok1.quarantined and not ok2.quarantined
        assert result["quarantined"] == ["miniblue4_ours_s0"]
        # Quarantined placeholders are excluded from suite metrics (their
        # NaNs would poison the deterministic JSON).
        metrics = suite_metrics(tasks, records)
        assert "s0" not in metrics.get("miniblue4", {}).get("ours", {})
        assert "s1" in metrics["miniblue4"]["ours"]
        # ... and the events stream recorded the retry + quarantine.
        events = [
            json.loads(line)
            for line in (tmp_path / "supervisor_events.jsonl")
            .read_text()
            .splitlines()
        ]
        kinds = [e["kind"] for e in events]
        assert "task_retry" in kinds and "task_quarantine" in kinds
        quarantine = next(e for e in events if e["kind"] == "task_quarantine")
        assert quarantine["run_id"] == "miniblue4_ours_s0"
        assert quarantine["attempts"] == 2

    def test_suite_manifest_records_quarantine(self, monkeypatch, tmp_path):
        from repro.harness.parallel import write_suite_manifest

        monkeypatch.setenv("REPRO_INJECT_FAULT", "task_exc:0@99")
        tasks = _tasks(2, telemetry_dir=str(tmp_path))
        records, supervision = run_tasks(
            tasks,
            jobs=1,
            supervisor_options=SupervisorOptions(
                max_retries=1, backoff_base=0.001
            ),
        )
        path = write_suite_manifest(
            str(tmp_path), tasks, records, jobs=1, supervision=supervision
        )
        payload = json.loads(open(path).read())
        entry = payload["runs"][0]
        assert entry["quarantined"] is True
        assert entry["final_metrics"] is None
        assert entry["quarantine"]["failures"][0]["failure"] == "exception"
        assert payload["supervision"]["quarantined"] == ["miniblue4_ours_s0"]


class TestDegradation:
    def test_unbuildable_pool_degrades_to_serial(self, monkeypatch):
        def boom(*args, **kwargs):
            raise OSError("no more processes")

        monkeypatch.setattr(supervisor_mod, "_spawn_worker", boom)
        tasks = _tasks(2)
        clean = run_parallel(tasks, jobs=1)
        records, result = run_tasks(tasks, jobs=2)
        _assert_records_identical(clean, records)
        assert result is not None and result["degraded_to_serial"]


class TestUnsupervisedSalvage:
    def test_task_failure_writes_partial_manifest(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_INJECT_FAULT", "task_exc:0")
        tasks = _tasks(2, telemetry_dir=str(tmp_path))
        with pytest.raises(TaskFailedError) as info:
            run_tasks(tasks, jobs=2, supervise=False)
        exc = info.value
        assert exc.run_id == "miniblue4_ours_s0"
        assert exc.failure == "exception"
        assert [i for i, _ in exc.completed] == [1]
        assert exc.partial_manifest == str(
            tmp_path / SUITE_MANIFEST_FILENAME
        )
        payload = json.loads(open(exc.partial_manifest).read())
        assert payload["partial"] is True
        assert payload["n_runs"] == 1
        assert payload["runs"][0]["run_id"] == "miniblue18_ours_s0"

    def test_summary_is_one_actionable_line(self):
        exc = PoolBrokenError(
            "a worker process died",
            task_index=2,
            run_id="miniblue18_ours_s0",
            completed=[(0, object())],
        )
        summary = exc.summary()
        assert "\n" not in summary
        assert "PoolBrokenError" in summary
        assert "miniblue18_ours_s0" in summary
        assert "crash" in summary
        assert "1 completed run(s) salvaged" in summary


class TestBackoffDeterminism:
    def test_schedule_is_pure_function_of_seed_task_attempt(self):
        opts = SupervisorOptions(backoff_seed=7)
        again = SupervisorOptions(backoff_seed=7)
        for task in range(3):
            for attempt in range(1, 4):
                assert opts.backoff_delay(task, attempt) == again.backoff_delay(
                    task, attempt
                )
        assert opts.backoff_delay(0, 1) != SupervisorOptions(
            backoff_seed=8
        ).backoff_delay(0, 1)

    def test_exponential_growth_and_cap(self):
        opts = SupervisorOptions(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=0.5
        )
        delays = [opts.backoff_delay(0, n) for n in range(1, 6)]
        # Jitter is +/-20%, so successive uncapped delays still grow.
        assert delays[1] > delays[0]
        assert all(d <= 0.5 * 1.2 for d in delays)
        assert all(d >= 0.1 * 0.8 for d in delays)


class TestCliSupervision:
    def test_quarantine_exits_nonzero_with_summary(
        self, monkeypatch, tmp_path, capsys
    ):
        from repro.harness.__main__ import main

        monkeypatch.setenv("REPRO_INJECT_FAULT", "task_exc:0@99")
        status = main(
            [
                "suite",
                "--designs",
                "miniblue4",
                "--modes",
                "ours",
                "--seeds",
                "0",
                "--max-iters",
                "6",
                "--jobs",
                "1",
                "--max-retries",
                "1",
                "--telemetry",
                str(tmp_path),
            ]
        )
        assert status == 1
        err = capsys.readouterr().err
        assert "QUARANTINED" in err and "quarantined" in err

    def test_no_supervise_aborts_with_typed_one_liner(
        self, monkeypatch, tmp_path, capsys
    ):
        from repro.harness.__main__ import main

        monkeypatch.setenv("REPRO_INJECT_FAULT", "task_exc:0")
        status = main(
            [
                "suite",
                "--designs",
                "miniblue4",
                "--modes",
                "ours",
                "--seeds",
                "0",
                "--max-iters",
                "6",
                "--jobs",
                "1",
                "--no-supervise",
                "--telemetry",
                str(tmp_path),
            ]
        )
        assert status == 1
        err = capsys.readouterr().err
        assert "TaskFailedError" in err
        assert "Traceback" not in err
