"""Validation of the incremental STA engine against full re-analysis."""

import numpy as np
import pytest

from repro.sta import IncrementalTimer, run_sta


@pytest.fixture()
def timer(small_design, spread_positions):
    x, y = spread_positions
    t = IncrementalTimer(small_design)
    t.reset(x, y)
    return t


class TestBaseline:
    def test_reset_matches_golden(self, timer, small_design, spread_positions):
        x, y = spread_positions
        ref = run_sta(small_design, x, y)
        assert timer.wns == pytest.approx(ref.wns_setup)
        assert timer.tns == pytest.approx(ref.tns_setup)
        np.testing.assert_allclose(timer.ep_slack, ref.endpoint_slack)

    def test_verify_passes_initially(self, timer):
        assert timer.verify()

    def test_verify_report_fields_on_pass(self, timer):
        from repro.sta import VerifyReport

        report = timer.verify()
        assert isinstance(report, VerifyReport)
        assert report.ok and bool(report)
        assert report.n_endpoints == len(timer.ep_slack)
        assert "OK" in str(report)

    def test_verify_report_names_worst_endpoint_on_mismatch(
        self, timer, small_design
    ):
        # Corrupt one endpoint's cached slack: verify must fail and point
        # at that exact endpoint with the deviation magnitude.
        k = 2
        timer.ep_slack[k] += 123.0
        timer._refresh_totals()
        report = timer.verify()
        assert not report
        pin = int(timer.graph.endpoint_pins[k])
        assert report.worst_endpoint_pin == pin
        assert report.worst_endpoint_name == small_design.pin_name[pin]
        assert report.worst_slack_delta == pytest.approx(123.0)
        assert "FAILED" in str(report)
        assert report.worst_endpoint_name in str(report)


class TestSingleMoves:
    def test_random_moves_match_golden(self, timer, small_design):
        rng = np.random.default_rng(3)
        movable = np.nonzero(~small_design.cell_fixed)[0]
        xl, yl, xh, yh = small_design.die
        for _ in range(12):
            ci = int(rng.choice(movable))
            nx = float(np.clip(timer.x[ci] + rng.normal(0, 5), xl, xh))
            ny = float(np.clip(timer.y[ci] + rng.normal(0, 5), yl, yh))
            wns, tns = timer.move([ci], [nx], [ny])
            ref = run_sta(small_design, timer.x, timer.y)
            assert wns == pytest.approx(ref.wns_setup, abs=1e-6)
            assert tns == pytest.approx(ref.tns_setup, abs=1e-5)

    def test_null_move_is_identity(self, timer):
        wns0, tns0 = timer.wns, timer.tns
        ci = int(np.nonzero(~timer.design.cell_fixed)[0][0])
        timer.move([ci], [timer.x[ci]], [timer.y[ci]])
        assert timer.wns == pytest.approx(wns0)
        assert timer.tns == pytest.approx(tns0)

    def test_move_and_undo_restores_state(self, timer, small_design):
        rng = np.random.default_rng(4)
        movable = np.nonzero(~small_design.cell_fixed)[0]
        cells = rng.choice(movable, 4, replace=False)
        old_x = timer.x[cells].copy()
        old_y = timer.y[cells].copy()
        at0 = timer.at.copy()
        slew0 = timer.slew.copy()
        wns0, tns0 = timer.wns, timer.tns
        timer.move(cells, old_x + 4.0, old_y - 3.0)
        timer.move(cells, old_x, old_y)
        assert timer.wns == pytest.approx(wns0, abs=1e-9)
        assert timer.tns == pytest.approx(tns0, abs=1e-8)
        np.testing.assert_allclose(timer.at, at0, atol=1e-8)
        np.testing.assert_allclose(timer.slew, slew0, atol=1e-8)

    def test_moving_critical_cell_changes_wns(self, timer, small_design):
        # Find a cell on the worst path and yank it far away.
        from repro.sta import StaticTimingAnalyzer, worst_paths

        sta = StaticTimingAnalyzer(small_design, timer.graph)
        res = sta.run(timer.x, timer.y)
        path = worst_paths(res, 1)[0]
        cell = next(
            int(small_design.pin2cell[p.pin])
            for p in path.points
            if not small_design.cell_fixed[small_design.pin2cell[p.pin]]
        )
        wns0 = timer.wns
        xl, yl, xh, yh = small_design.die
        timer.move([cell], [xl + 1.0], [yl + 1.0])
        assert timer.wns != pytest.approx(wns0)

    def test_batch_move_matches_golden(self, timer, small_design):
        rng = np.random.default_rng(5)
        movable = np.nonzero(~small_design.cell_fixed)[0]
        cells = rng.choice(movable, 6, replace=False)
        timer.move(cells, timer.x[cells] + 2.0, timer.y[cells] - 2.0)
        ref = run_sta(small_design, timer.x, timer.y)
        assert timer.wns == pytest.approx(ref.wns_setup, abs=1e-6)
        assert timer.tns == pytest.approx(ref.tns_setup, abs=1e-5)


class TestEfficiency:
    def test_recompute_count_is_local(self, timer, small_design):
        """A single move should touch far fewer pins than the design has."""
        rng = np.random.default_rng(6)
        movable = np.nonzero(~small_design.cell_fixed)[0]
        before = timer.n_pins_recomputed
        ci = int(rng.choice(movable))
        timer.move([ci], [timer.x[ci] + 1.0], [timer.y[ci]])
        touched = timer.n_pins_recomputed - before
        assert touched < small_design.n_pins / 2

    def test_fixed_port_move_rejected_semantics(self, timer, small_design):
        """Moving a port is allowed by the API (caller decides legality);
        the timing update must still be exact."""
        ports = np.nonzero(small_design.cell_is_port)[0]
        pi = int(ports[1])
        timer.move([pi], [timer.x[pi] + 1.0], [timer.y[pi]])
        ref = run_sta(small_design, timer.x, timer.y)
        assert timer.wns == pytest.approx(ref.wns_setup, abs=1e-6)


class TestVerify:
    def test_verify_after_moves(self, timer, small_design):
        """verify() cross-checks slacks, WNS *and* TNS after real moves."""
        rng = np.random.default_rng(9)
        movable = np.nonzero(~small_design.cell_fixed)[0]
        cells = rng.choice(movable, 5, replace=False)
        timer.move(cells, timer.x[cells] + 3.0, timer.y[cells] - 2.0)
        assert timer.verify()

    def test_verify_catches_corrupted_tns(self, timer):
        """TNS is part of the cross-check (it used to be skipped)."""
        timer.tns -= 10.0
        assert not timer.verify()

    def test_verify_catches_corrupted_wns(self, timer):
        timer.wns -= 10.0
        assert not timer.verify()


class TestBatchedSweepEquivalence:
    def test_batched_level_matches_scalar_recompute(
        self, timer, small_design
    ):
        """The vectorised per-level kernel equals the scalar oracle
        ``_recompute_pin`` on every recomputable pin of the design."""
        recomputable = np.nonzero(
            (timer.fanin_net_src >= 0)
            | (np.diff(timer._c_start) > 0)
        )[0]
        expected = {
            int(p): timer._recompute_pin(int(p)) for p in recomputable
        }
        for chunk in timer._split_by_level(recomputable):
            timer._recompute_level(chunk)
        for p, (at, slew) in expected.items():
            np.testing.assert_allclose(timer.at[p], at, atol=1e-12)
            np.testing.assert_allclose(timer.slew[p], slew, atol=1e-12)

    def test_batched_endpoint_slacks_match_scalar(self, timer):
        g = timer.graph
        expected = np.array(
            [timer._endpoint_slack(int(p)) for p in g.endpoint_pins]
        )
        timer.ep_slack[:] = 0.0
        timer._refresh_endpoint_slacks(g.endpoint_pins)
        np.testing.assert_allclose(timer.ep_slack, expected, atol=1e-12)
