"""reprolint framework + rules: fixtures, suppressions, baseline, CLI.

Each rule gets a good and a bad fixture inside a synthetic mini-repo
under ``tmp_path``; the framework tests cover inline suppressions (both
placements, plus the meta findings for malformed/unused ones), baseline
round-trips including the tamper check, CLI exit codes, and the
telemetry provenance hooks.  Finally the real repository itself must
lint clean - the self-check CI relies on.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.analysis import (
    Baseline,
    BaselineIntegrityError,
    RULES_VERSION,
    run_analysis,
)
from repro.analysis.baseline import BASELINE_FILENAME
from repro.analysis.cli import main as cli_main
from repro.analysis.provenance import analysis_provenance
from repro.telemetry.compare import compare_runs
from repro.telemetry.events import (
    EVENT_KINDS,
    MetricsRecorder,
    kind_error_message,
    suggest_kind,
)
from repro.telemetry.manifest import RunManifest, write_manifest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_EVENTS_FIXTURE = 'EVENT_KINDS = ("alpha", "beta", "gamma_ray")\n'


def make_repo(tmp_path, files):
    """Materialise a synthetic repo; returns its root as str."""
    defaults = {"src/repro/telemetry/events.py": _EVENTS_FIXTURE}
    defaults.update(files)
    for rel, content in defaults.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
    return str(tmp_path)


def findings_of(report, rule):
    return [f for f in report.new_findings if f.rule == rule]


# ----------------------------------------------------------------------
class TestNoScatterAddAt:
    def test_flags_add_at_and_subtract_at(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/mod.py": (
                    "import numpy as np\n"
                    "def f(out, idx, v):\n"
                    "    np.add.at(out, idx, v)\n"
                    "    np.subtract.at(out, idx, v)\n"
                )
            },
        )
        found = findings_of(run_analysis(root), "no-scatter-add-at")
        assert len(found) == 2
        assert "repro.core.scatter" in found[0].message

    def test_flags_xp_add_at(self, tmp_path):
        """The backend shim's ``xp`` namespace is numpy-like to rules."""
        root = make_repo(
            tmp_path,
            {
                "src/repro/mod.py": (
                    "from repro.core.backend import xp\n"
                    "def f(out, idx, v):\n"
                    "    xp.add.at(out, idx, v)\n"
                )
            },
        )
        found = findings_of(run_analysis(root), "no-scatter-add-at")
        assert len(found) == 1

    def test_good_paths_clean(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/mod.py": (
                    "import numpy as np\n"
                    "from repro.core.scatter import scatter_add\n"
                    "def f(out, idx, v):\n"
                    "    np.maximum.at(out, idx, v)\n"  # order-independent: fine
                    "    return scatter_add(idx, v, 8)\n"
                ),
                "tests/test_mod.py": (
                    "import numpy as np\n"
                    "def test_ref(out, idx, v):\n"
                    "    np.add.at(out, idx, v)\n"  # reference impl: exempt
                ),
            },
        )
        report = run_analysis(root)
        assert findings_of(report, "no-scatter-add-at") == []


class TestNoSilentNanFix:
    def test_flags_nan_to_num_and_errstate(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/mod.py": (
                    "import numpy as np\n"
                    "def f(g):\n"
                    "    np.nan_to_num(g, copy=False)\n"
                    '    with np.errstate(invalid="ignore"):\n'
                    "        return g > 0\n"
                )
            },
        )
        assert len(findings_of(run_analysis(root), "no-silent-nanfix")) == 2

    def test_guard_module_and_benign_errstate_exempt(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/runtime/guard.py": (
                    "import numpy as np\n"
                    "def scrub(g):\n"
                    "    np.nan_to_num(g, copy=False)\n"
                ),
                "src/repro/mod.py": (
                    "import numpy as np\n"
                    "def f(g):\n"
                    '    with np.errstate(over="ignore"):\n'
                    "        return g * 2\n"
                ),
            },
        )
        assert findings_of(run_analysis(root), "no-silent-nanfix") == []


class TestDeterminismTaintRngHeritage:
    """The RNG-hygiene checks the old seeded-rng rule carried now live
    in the determinism-taint family."""

    def test_flags_global_state_and_unseeded_rng(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/mod.py": (
                    "import numpy as np\n"
                    "def f():\n"
                    "    np.random.seed(0)\n"
                    "    a = np.random.normal(size=3)\n"
                    "    rng = np.random.default_rng()\n"
                    "    return a, rng\n"
                )
            },
        )
        found = findings_of(run_analysis(root), "determinism-taint")
        assert len(found) == 3

    def test_seeded_generator_clean(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/mod.py": (
                    "import numpy as np\n"
                    "def f(seed):\n"
                    "    rng = np.random.default_rng(seed)\n"
                    "    return rng.normal(size=3)\n"
                )
            },
        )
        assert findings_of(run_analysis(root), "determinism-taint") == []

    def test_shadowed_np_is_not_the_backend(self, tmp_path):
        """Regression for the bare-name _is_numpy bug: a local variable
        named ``np`` shadowing nothing numpy-related must not trip the
        numpy-contract rules."""
        root = make_repo(
            tmp_path,
            {
                "src/repro/mod.py": (
                    "def f(fake_backend, o, i, v):\n"
                    "    np = fake_backend\n"
                    "    np.random.seed(0)\n"
                    "    np.add.at(o, i, v)\n"
                    "    np.nan_to_num(o, copy=False)\n"
                    "    return o\n"
                )
            },
        )
        report = run_analysis(root)
        assert findings_of(report, "determinism-taint") == []
        assert findings_of(report, "no-scatter-add-at") == []
        assert findings_of(report, "no-silent-nanfix") == []


class TestTelemetryKindLiteral:
    def test_flags_unknown_kind_with_suggestion(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/mod.py": (
                    "def f(rec):\n"
                    '    rec.event("alpa", value=1)\n'
                )
            },
        )
        found = findings_of(run_analysis(root), "telemetry-kind-literal")
        assert len(found) == 1
        assert "unknown event kind 'alpa'" in found[0].message
        assert "did you mean 'alpha'" in found[0].message

    def test_known_kind_and_dynamic_kind_clean(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/mod.py": (
                    "def f(rec, kind):\n"
                    '    rec.event("beta", value=1)\n'
                    '    rec.event(kind="gamma_ray")\n'
                    "    rec.event(kind)\n"
                )
            },
        )
        assert findings_of(run_analysis(root), "telemetry-kind-literal") == []

    def test_message_matches_runtime_error(self, tmp_path):
        """The lint diagnostic and MetricsRecorder.event agree verbatim
        when the vocabulary is the real EVENT_KINDS."""
        kinds_src = f"EVENT_KINDS = {EVENT_KINDS!r}\n"
        root = make_repo(
            tmp_path,
            {
                "src/repro/telemetry/events.py": kinds_src,
                "src/repro/mod.py": 'def f(rec):\n    rec.event("iterat1on")\n',
            },
        )
        found = findings_of(run_analysis(root), "telemetry-kind-literal")
        assert len(found) == 1
        assert found[0].message == kind_error_message("iterat1on")


class TestCheckpointCompleteness:
    _PROVIDER = (
        "class Thing:\n"
        "    def __init__(self):\n"
        "        self._count = 0\n"
        "        self.extra = None\n"
        "    def step(self):\n"
        "        self._count += 1\n"
        "        self.extra = object()\n"
        "        self.table[0] = 1\n"
        "    def get_state(self):\n"
        '        return {{"count": self._count{keys}}}\n'
        "    def set_state(self, state):\n"
        '        self._count = state["count"]\n'
    )

    def test_flags_missing_attrs_including_subscript(self, tmp_path):
        root = make_repo(
            tmp_path,
            {"src/repro/mod.py": self._PROVIDER.format(keys="")},
        )
        found = findings_of(run_analysis(root), "checkpoint-completeness")
        assert {f.message.split()[0] for f in found} == {
            "Thing.extra",
            "Thing.table",
        }

    def test_underscore_stripped_keys_match(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/mod.py": self._PROVIDER.format(
                    keys=', "extra": 1, "table": 2'
                )
            },
        )
        assert findings_of(run_analysis(root), "checkpoint-completeness") == []

    def test_suppression_on_any_mutation_line(self, tmp_path):
        src = self._PROVIDER.format(keys=', "table": 2').replace(
            "self.extra = object()",
            "self.extra = object()  # reprolint: allow[checkpoint-completeness] derived cache",
        )
        root = make_repo(tmp_path, {"src/repro/mod.py": src})
        report = run_analysis(root)
        assert findings_of(report, "checkpoint-completeness") == []
        assert findings_of(report, "unused-suppression") == []

    def test_non_provider_classes_ignored(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/mod.py": (
                    "class Plain:\n"
                    "    def step(self):\n"
                    "        self.anything = 1\n"
                )
            },
        )
        assert findings_of(run_analysis(root), "checkpoint-completeness") == []


class TestBackwardPair:
    _TEST_FILE = (
        "from repro.core.kern import foo_forward_level\n"
        "def test_foo_grad():\n"
        "    assert foo_forward_level(1) == 1\n"
    )

    def _kernel(self, backward="repro.core.kern.foo_backward",
                gradcheck="tests/test_kern.py::test_foo_grad"):
        return (
            "from repro.contracts import differentiable\n"
            f'@differentiable(backward="{backward}", gradcheck="{gradcheck}")\n'
            "def foo_forward_level(x):\n"
            "    return x\n"
            "def foo_backward(x):\n"
            "    return x\n"
        )

    def test_contracted_kernel_clean(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/core/kern.py": self._kernel(),
                "tests/test_kern.py": self._TEST_FILE,
            },
        )
        report = run_analysis(root)
        assert findings_of(report, "backward-pair") == []
        assert findings_of(report, "contract-closure") == []

    def test_undecorated_forward_kernel_flagged(self, tmp_path):
        root = make_repo(
            tmp_path,
            {"src/repro/core/kern.py": "def foo_forward(x):\n    return x\n"},
        )
        found = findings_of(run_analysis(root), "backward-pair")
        assert len(found) == 1 and "foo_forward" in found[0].message

    def test_forward_outside_kernel_dirs_not_required(self, tmp_path):
        root = make_repo(
            tmp_path,
            {"src/repro/place/mod.py": "def push_forward(x):\n    return x\n"},
        )
        assert findings_of(run_analysis(root), "backward-pair") == []

    def test_dangling_backward_and_gradcheck_flagged(self, tmp_path):
        # Resolution of the contract strings is the project-scope
        # contract-closure rule's job (backward-pair only checks the
        # decorator's shape).
        root = make_repo(
            tmp_path,
            {
                "src/repro/core/kern.py": self._kernel(
                    backward="repro.core.kern.missing_backward",
                    gradcheck="tests/test_kern.py::test_missing",
                ),
                "tests/test_kern.py": self._TEST_FILE,
            },
        )
        report = run_analysis(root)
        assert findings_of(report, "backward-pair") == []
        found = findings_of(report, "contract-closure")
        assert len(found) == 2
        messages = " ".join(f.message for f in found)
        assert "missing_backward" in messages and "test_missing" in messages


# ----------------------------------------------------------------------
class TestSuppressions:
    _BAD = "import numpy as np\ndef f(o, i, v):\n    np.add.at(o, i, v)\n"

    def test_same_line_suppression(self, tmp_path):
        src = self._BAD.replace(
            "np.add.at(o, i, v)",
            "np.add.at(o, i, v)  # reprolint: allow[no-scatter-add-at] proven hot-path exception",
        )
        root = make_repo(tmp_path, {"src/repro/mod.py": src})
        report = run_analysis(root)
        assert report.new_findings == []
        assert report.suppressed_count == 1

    def test_previous_line_suppression(self, tmp_path):
        src = self._BAD.replace(
            "    np.add.at(o, i, v)",
            "    # reprolint: allow[no-scatter-add-at] proven hot-path exception\n"
            "    np.add.at(o, i, v)",
        )
        root = make_repo(tmp_path, {"src/repro/mod.py": src})
        assert run_analysis(root).new_findings == []

    def test_reasonless_suppression_rejected(self, tmp_path):
        src = self._BAD.replace(
            "np.add.at(o, i, v)",
            "np.add.at(o, i, v)  # reprolint: allow[no-scatter-add-at]",
        )
        root = make_repo(tmp_path, {"src/repro/mod.py": src})
        report = run_analysis(root)
        rules = {f.rule for f in report.new_findings}
        assert rules == {"no-scatter-add-at", "bad-suppression"}

    def test_unknown_rule_and_unused_suppressions_flagged(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/mod.py": (
                    "x = 1  # reprolint: allow[no-such-rule] whatever\n"
                    "y = 2  # reprolint: allow[determinism-taint] nothing to suppress\n"
                )
            },
        )
        rules = sorted(f.rule for f in run_analysis(root).new_findings)
        assert rules == ["bad-suppression", "unused-suppression"]

    def test_marker_in_docstring_ignored(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/mod.py": (
                    '"""Mentions reprolint: allow[no-scatter-add-at] in prose."""\n'
                    "x = 1\n"
                )
            },
        )
        report = run_analysis(root)
        assert report.new_findings == []
        assert report.suppressed_count == 0


# ----------------------------------------------------------------------
class TestBaseline:
    _BAD = "import numpy as np\ndef f(o, i, v):\n    np.add.at(o, i, v)\n"

    def test_grandfathers_old_but_catches_new(self, tmp_path):
        root = make_repo(tmp_path, {"src/repro/mod.py": self._BAD})
        baseline_path = os.path.join(root, BASELINE_FILENAME)
        assert cli_main(["--root", root, "--write-baseline"]) == 0

        report = run_analysis(root, baseline_path=baseline_path)
        assert report.new_findings == []
        assert len(report.baselined_findings) == 1

        # A second, new occurrence is NOT covered by the baseline.
        (tmp_path / "src/repro/mod.py").write_text(
            self._BAD + "def g(o, i, v):\n    np.subtract.at(o, i, v)\n"
        )
        report = run_analysis(root, baseline_path=baseline_path)
        assert len(report.new_findings) == 1
        assert len(report.baselined_findings) == 1

    def test_hand_edited_baseline_fails_integrity(self, tmp_path):
        root = make_repo(tmp_path, {"src/repro/mod.py": self._BAD})
        baseline_path = os.path.join(root, BASELINE_FILENAME)
        cli_main(["--root", root, "--write-baseline"])
        data = json.loads((tmp_path / BASELINE_FILENAME).read_text())
        data["entries"] = []  # shrink without regenerating
        (tmp_path / BASELINE_FILENAME).write_text(json.dumps(data))
        with pytest.raises(BaselineIntegrityError):
            run_analysis(root, baseline_path=baseline_path)
        assert cli_main(["--root", root]) == 2

    def test_roundtrip_preserves_entries(self, tmp_path):
        baseline = Baseline.from_findings([], RULES_VERSION)
        path = str(tmp_path / "b.json")
        baseline.write(path)
        loaded = Baseline.load(path)
        assert loaded.entries == []
        assert loaded.rules_version == RULES_VERSION
        assert loaded.integrity_hash == baseline.integrity_hash

    def test_missing_baseline_is_empty(self, tmp_path):
        loaded = Baseline.load(str(tmp_path / "nope.json"))
        assert loaded.entries == [] and loaded.integrity_hash is None


# ----------------------------------------------------------------------
class TestCli:
    def test_exit_codes_and_json_report(self, tmp_path, capsys):
        root = make_repo(
            tmp_path,
            {
                "src/repro/mod.py": (
                    "import numpy as np\n"
                    "def f(o, i, v):\n    np.add.at(o, i, v)\n"
                )
            },
        )
        json_path = str(tmp_path / "report.json")
        assert cli_main(["--root", root, "--json", json_path]) == 1
        payload = json.loads(open(json_path).read())
        assert payload["clean"] is False
        assert payload["new_findings"][0]["rule"] == "no-scatter-add-at"

        (tmp_path / "src/repro/mod.py").write_text("x = 1\n")
        assert cli_main(["--root", root]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "no-scatter-add-at",
            "no-silent-nanfix",
            "telemetry-kind-literal",
            "checkpoint-completeness",
            "backward-pair",
            "dtype-flow",
            "spawn-safety",
            "determinism-taint",
            "contract-closure",
            "bad-suppression",
            "unused-suppression",
        ):
            assert rule_id in out

    def test_module_entrypoint_on_real_repo(self):
        """``python -m repro.analysis`` exits 0 on this repository."""
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--root", REPO_ROOT],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestRepoSelfCheck:
    def test_repo_lints_clean_against_committed_baseline(self):
        report = run_analysis(
            REPO_ROOT,
            baseline_path=os.path.join(REPO_ROOT, BASELINE_FILENAME),
        )
        assert report.new_findings == []

    def test_committed_baseline_is_empty(self):
        baseline = Baseline.load(os.path.join(REPO_ROOT, BASELINE_FILENAME))
        assert baseline.entries == []
        assert baseline.integrity_hash is not None


# ----------------------------------------------------------------------
class TestProvenanceAndTelemetry:
    def test_provenance_shape(self):
        prov = analysis_provenance(REPO_ROOT)
        assert prov["rules_version"] == RULES_VERSION
        assert prov["new_finding_count"] == 0
        assert prov["clean"] is True
        assert prov["baseline_hash"]

    def test_provenance_never_raises(self, tmp_path):
        prov = analysis_provenance(str(tmp_path))  # not a repo at all
        assert isinstance(prov, dict)

    def test_manifest_records_analysis(self):
        manifest = RunManifest.create("d", "ours", seed=0)
        assert manifest.analysis is not None
        assert manifest.analysis["rules_version"] == RULES_VERSION
        restored = RunManifest.from_dict(manifest.to_dict())
        assert restored.analysis == manifest.analysis

    def test_compare_flags_dirty_tree_without_gating(self, tmp_path):
        base = dict(
            design="d", mode="ours", seed=0,
            final_metrics={"wns": -1.0, "tns": -5.0, "hpwl": 10.0,
                           "overflow": 0.1, "iterations": 3,
                           "stop_reason": "max_iters"},
        )
        clean = {"rules_version": RULES_VERSION, "new_finding_count": 0,
                 "clean": True, "baseline_hash": "abc"}
        dirty = {"rules_version": "0.9", "new_finding_count": 4,
                 "clean": False, "baseline_hash": "xyz"}
        ma = RunManifest(run_id="a", analysis=clean, **base)
        mb = RunManifest(run_id="b", analysis=dirty, **base)
        write_manifest(ma, str(tmp_path / "a"))
        write_manifest(mb, str(tmp_path / "b"))
        result = compare_runs(str(tmp_path / "a"), str(tmp_path / "b"))
        assert result.ok  # dirty tree must not gate
        notes = " ".join(result.notes)
        assert "dirty tree" in notes and "4 non-baselined" in notes
        assert "rule set" in notes and "baseline" in notes

    def test_event_kind_suggestion_helpers(self, tmp_path):
        assert suggest_kind("iterations") == "iteration"
        assert suggest_kind("zzzz") is None
        message = kind_error_message("checkpont")
        assert "did you mean 'checkpoint'" in message
        rec = MetricsRecorder(str(tmp_path / "events.jsonl"))
        with pytest.raises(ValueError, match="did you mean 'recovery'"):
            rec.event("recovry")
        rec.close()


class TestBackendShimOnly:
    def test_flags_numpy_and_scipy_in_kernel_modules(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/place/density.py": (
                    "import numpy as np\n"
                    "from scipy.fft import dctn\n"
                    "def f(a):\n"
                    "    return np.exp(a)\n"
                ),
            },
        )
        found = findings_of(run_analysis(root), "backend-shim-only")
        assert len(found) == 3  # import, from-import, np. attribute
        assert "repro.core.backend" in found[0].message

    def test_shim_use_and_non_kernel_modules_clean(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/place/density.py": (
                    "from ..core.backend import get_backend, xp\n"
                    "def f(a):\n"
                    "    return get_backend().rfft(xp.asarray(a))\n"
                ),
                # Direct numpy use outside the ported kernels is normal.
                "src/repro/sta/mod.py": (
                    "import numpy as np\n"
                    "def g(a):\n"
                    "    return np.exp(a)\n"
                ),
            },
        )
        assert findings_of(run_analysis(root), "backend-shim-only") == []


class TestSupervisedPoolOnly:
    def test_flags_bare_pool_construction(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/mod.py": (
                    "from concurrent.futures import ProcessPoolExecutor\n"
                    "import concurrent.futures as cf\n"
                    "def fan_out(tasks):\n"
                    "    with ProcessPoolExecutor(max_workers=2) as pool:\n"
                    "        pass\n"
                    "    pool2 = cf.ProcessPoolExecutor()\n"
                ),
            },
        )
        found = findings_of(run_analysis(root), "supervised-pool-only")
        assert len(found) == 2
        assert "repro.harness.supervisor" in found[0].message

    def test_supervisor_module_and_tests_exempt(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/harness/supervisor.py": (
                    "from concurrent.futures import ProcessPoolExecutor\n"
                    "def legacy(tasks):\n"
                    "    return ProcessPoolExecutor(max_workers=2)\n"
                ),
                "tests/test_pool.py": (
                    "from concurrent.futures import ProcessPoolExecutor\n"
                    "def test_pool():\n"
                    "    assert ProcessPoolExecutor(max_workers=1)\n"
                ),
            },
        )
        report = run_analysis(root)
        assert findings_of(report, "supervised-pool-only") == []
