"""Unit tests for the multi-backend array shim (`repro.core.backend`)."""

import os

import numpy as np
import pytest

from repro.core import backend as backend_mod
from repro.core.backend import (
    BACKEND_ENV,
    BACKEND_NAMES,
    BackendUnavailableError,
    available_backends,
    backend_name,
    get_backend,
    set_backend,
    to_numpy,
    use_backend,
    xp,
)


@pytest.fixture(autouse=True)
def _restore_selection():
    """Reset explicit selection and env override around every test."""
    prev_active = backend_mod._active
    prev_env = os.environ.get(BACKEND_ENV)
    yield
    backend_mod._active = prev_active
    if prev_env is None:
        os.environ.pop(BACKEND_ENV, None)
    else:
        os.environ[BACKEND_ENV] = prev_env


class TestXpProxy:
    def test_dispatches_to_numpy_bit_for_bit(self):
        a = xp.linspace(0.0, 1.0, 17)
        b = np.linspace(0.0, 1.0, 17)
        assert isinstance(a, np.ndarray)
        assert np.array_equal(a, b)
        assert np.array_equal(xp.exp(a), np.exp(b))

    def test_constants_and_dtypes_forward(self):
        assert xp.pi == np.pi
        assert xp.dtype(xp.float32) == np.dtype(np.float32)
        assert xp.float64 is np.float64

    def test_repr_names_active_backend(self):
        assert "numpy" in repr(xp)


class TestSelection:
    def test_default_is_numpy(self):
        os.environ.pop(BACKEND_ENV, None)
        backend_mod._active = None
        assert backend_name() == "numpy"
        assert get_backend().name == "numpy"

    def test_env_var_selects_backend(self):
        backend_mod._active = None
        os.environ[BACKEND_ENV] = "numpy"
        assert backend_name() == "numpy"
        assert get_backend().name == "numpy"

    def test_explicit_wins_over_env(self):
        os.environ[BACKEND_ENV] = "torch"
        set_backend("numpy")
        assert backend_name() == "numpy"

    def test_unknown_backend_is_clean_error(self):
        with pytest.raises(BackendUnavailableError, match="unknown backend"):
            set_backend("jax")

    def test_use_backend_scopes_and_restores(self):
        backend_mod._active = None
        with use_backend("numpy") as be:
            assert be.name == "numpy"
            assert backend_mod._active == "numpy"
        assert backend_mod._active is None

    def test_use_backend_restores_on_error(self):
        backend_mod._active = None
        with pytest.raises(RuntimeError, match="boom"):
            with use_backend("numpy"):
                raise RuntimeError("boom")
        assert backend_mod._active is None


class TestAvailability:
    def test_numpy_always_available(self):
        assert "numpy" in available_backends()

    @pytest.mark.parametrize("name", ["cupy", "torch"])
    def test_missing_accelerator_raises_with_alternatives(self, name):
        """Accelerator backends absent in this container fail cleanly.

        If one IS importable here, selection must still succeed or raise
        the typed error - never a raw ImportError.
        """
        try:
            be = set_backend(name)
        except BackendUnavailableError as exc:
            assert exc.backend == name
            assert "available:" in str(exc)
            assert "numpy" in str(exc)
        else:
            assert be.name == name

    def test_selection_does_not_leak_on_failure(self):
        backend_mod._active = None
        if "cupy" in available_backends():
            pytest.skip("cupy importable in this environment")
        with pytest.raises(BackendUnavailableError):
            set_backend("cupy")
        assert backend_name() == "numpy"


class TestNumpyBackendTransforms:
    def test_rfft_preserves_float32(self):
        """scipy-routed FFTs keep fp32 in complex64 (numpy.fft promotes)."""
        be = get_backend()
        a = np.random.default_rng(0).random((4, 16)).astype(np.float32)
        spec = be.rfft(a)
        assert spec.dtype == np.complex64
        back = be.irfft(spec, n=16)
        assert back.dtype == np.float32
        np.testing.assert_allclose(back, a, rtol=1e-5, atol=1e-6)

    def test_rfft_matches_numpy_fft_fp64(self):
        be = get_backend()
        a = np.random.default_rng(1).random((3, 32))
        np.testing.assert_allclose(be.rfft(a), np.fft.rfft(a), rtol=1e-12)

    def test_dctn_roundtrip(self):
        be = get_backend()
        a = np.random.default_rng(2).random((8, 8))
        coeff = be.dctn(a, type=2, norm="ortho")
        np.testing.assert_allclose(
            be.idctn(coeff, type=2, norm="ortho"), a, rtol=1e-12
        )

    def test_to_numpy_is_host_array(self):
        out = to_numpy(xp.arange(5))
        assert isinstance(out, np.ndarray)
        assert out.tolist() == [0, 1, 2, 3, 4]


def test_backend_names_frozen():
    assert BACKEND_NAMES == ("numpy", "cupy", "torch")
