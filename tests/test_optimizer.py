"""Unit tests for the placement optimizers."""

import numpy as np
import pytest

from repro.place import AdamOptimizer, NesterovOptimizer, make_optimizer


def quadratic(center, scale):
    def grad(x):
        return 2.0 * scale * (x - center)

    def value(x):
        return float(scale * np.sum((x - center) ** 2))

    return grad, value


class TestNesterov:
    def test_converges_on_quadratic(self):
        center = np.array([3.0, -2.0, 7.0])
        grad, value = quadratic(center, 1.0)
        opt = NesterovOptimizer(np.zeros(3), lr=0.1)
        for _ in range(200):
            opt.step(grad(opt.params))
        assert value(opt.u) < 1e-6

    def test_bb_step_adapts(self):
        # Moderately ill-conditioned quadratic: BB steps still converge
        # (heavily ill-conditioned cases rely on the placer's external
        # divergence guard, not on the bare optimizer).
        scale = np.array([1.0, 10.0])
        center = np.array([1.0, 1.0])

        def grad(x):
            return 2.0 * scale * (x - center)

        opt = NesterovOptimizer(np.zeros(2), lr=0.01)
        for _ in range(500):
            opt.step(grad(opt.params))
        assert np.abs(opt.u - center).max() < 1e-4

    def test_bounds_projection(self):
        grad, _ = quadratic(np.array([10.0]), 1.0)
        lo, hi = np.array([0.0]), np.array([2.0])
        opt = NesterovOptimizer(np.array([1.0]), lr=0.5, bounds=(lo, hi))
        for _ in range(50):
            opt.step(grad(opt.params))
        assert 0.0 <= opt.u[0] <= 2.0
        assert 0.0 <= opt.params[0] <= 2.0  # lookahead also projected
        assert opt.u[0] == pytest.approx(2.0, abs=1e-6)

    def test_restart_clears_momentum(self):
        opt = NesterovOptimizer(np.zeros(2), lr=0.1)
        for _ in range(5):
            opt.step(np.ones(2))
        lr_before = opt.lr_max
        opt.restart()
        assert opt.a == 1.0
        assert opt.lr_max <= lr_before
        np.testing.assert_allclose(opt.v, opt.u)

    def test_nonfinite_gradient_survived(self):
        opt = NesterovOptimizer(np.zeros(2), lr=0.1)
        opt.step(np.array([1.0, 1.0]))
        opt.step(np.array([np.inf, 1.0]))  # BB update must not poison lr
        assert np.isfinite(opt.lr)


class TestAdam:
    def test_converges_on_quadratic(self):
        center = np.array([3.0, -2.0])
        grad, value = quadratic(center, 1.0)
        opt = AdamOptimizer(np.zeros(2), lr=0.3)
        for _ in range(500):
            opt.step(grad(opt.params))
        assert value(opt.x) < 1e-4

    def test_bounds(self):
        grad, _ = quadratic(np.array([10.0]), 1.0)
        opt = AdamOptimizer(
            np.array([0.0]), lr=0.5, bounds=(np.array([-1.0]), np.array([2.0]))
        )
        for _ in range(100):
            opt.step(grad(opt.params))
        assert opt.x[0] <= 2.0


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_optimizer("nesterov", np.zeros(2), 0.1), NesterovOptimizer)
        assert isinstance(make_optimizer("adam", np.zeros(2), 0.1), AdamOptimizer)
        with pytest.raises(ValueError):
            make_optimizer("sgd", np.zeros(2), 0.1)
