"""Unit tests for the Liberty subset parser and writer."""

import numpy as np
import pytest

from repro.netlist import (
    ArcKind,
    LibertyError,
    Unateness,
    default_library,
    parse_liberty,
    write_liberty,
)
from repro.netlist.liberty import parse_liberty_groups


class TestRoundTrip:
    def test_full_default_library_roundtrip(self, library):
        text = write_liberty(library)
        parsed = parse_liberty(text)
        assert parsed.name == library.name
        assert set(c.name for c in parsed) == set(c.name for c in library)

    def test_luts_roundtrip_bit_exact(self, library):
        parsed = parse_liberty(write_liberty(library))
        for cell in library:
            other = parsed[cell.name]
            assert len(other.arcs) == len(cell.arcs)
            # Liberty groups arcs under their sink pin, so the parsed order
            # can differ from construction order; match by identity key.
            index = {
                (a.from_pin, a.to_pin, a.kind): a for a in other.arcs
            }
            for arc in cell.arcs:
                arc2 = index[(arc.from_pin, arc.to_pin, arc.kind)]
                assert arc.kind == arc2.kind
                if arc.kind.is_delay_arc:
                    assert arc.unateness == arc2.unateness
                for kind in (
                    "cell_rise",
                    "cell_fall",
                    "rise_transition",
                    "fall_transition",
                    "rise_constraint",
                    "fall_constraint",
                ):
                    lut = getattr(arc, kind)
                    lut2 = getattr(arc2, kind)
                    assert (lut is None) == (lut2 is None)
                    if lut is not None:
                        assert lut == lut2

    def test_geometry_roundtrip(self, library):
        parsed = parse_liberty(write_liberty(library))
        for cell in library:
            assert parsed[cell.name].width == pytest.approx(cell.width)
            assert parsed[cell.name].height == pytest.approx(cell.height)

    def test_pin_attributes_roundtrip(self, library):
        parsed = parse_liberty(write_liberty(library))
        dff = parsed["DFF_X1"]
        assert dff.is_sequential
        assert dff.pin("CK").is_clock
        assert dff.pin("D").capacitance == pytest.approx(
            library["DFF_X1"].pin("D").capacitance
        )

    def test_wire_model_roundtrip(self, library):
        parsed = parse_liberty(write_liberty(library))
        assert parsed.wire.res_per_um == pytest.approx(library.wire.res_per_um)
        assert parsed.wire.cap_per_um == pytest.approx(library.wire.cap_per_um)


class TestParserDetails:
    def test_comments_are_ignored(self):
        text = """
        /* block comment */
        library (demo) { // line comment
          time_unit : "1ps";
          cell (X) { area : 2.0; pin (A) { direction : input; capacitance : 1.0; } }
        }
        """
        lib = parse_liberty(text)
        assert "X" in lib

    def test_quoted_function_with_special_chars(self):
        text = """
        library (demo) {
          cell (M) {
            area : 2.0;
            pin (Y) { direction : output; function : "S ? (A & B) : !C"; }
          }
        }
        """
        lib = parse_liberty(text)
        assert lib["M"].function == "S ? (A & B) : !C"

    def test_values_with_line_continuations(self):
        text = r"""
        library (demo) {
          cell (X) {
            area : 1.0;
            pin (A) { direction : input; capacitance : 1.0; }
            pin (Y) { direction : output;
              timing () {
                related_pin : "A";
                timing_type : combinational;
                timing_sense : positive_unate;
                cell_rise (t) {
                  index_1 ("1, 2");
                  index_2 ("3, 4");
                  values ( \
                    "10, 11", \
                    "12, 13");
                }
                cell_fall (t) { values ("1, 1", "1, 1"); index_1 ("1, 2"); index_2 ("3, 4"); }
                rise_transition (t) { values ("1, 1", "1, 1"); index_1 ("1, 2"); index_2 ("3, 4"); }
                fall_transition (t) { values ("1, 1", "1, 1"); index_1 ("1, 2"); index_2 ("3, 4"); }
              }
            }
          }
        }
        """
        lib = parse_liberty(text)
        lut = lib["X"].arcs[0].cell_rise
        np.testing.assert_allclose(lut.values, [[10, 11], [12, 13]])
        assert lib["X"].arcs[0].unateness is Unateness.POSITIVE

    def test_group_tree_structure(self):
        root = parse_liberty_groups(
            'library (l) { a : 1; g (x) { b : 2; } c (1, ff); }'
        )
        assert root.kind == "library"
        assert root.attrs["a"] == "1"
        assert root.first("g").attrs["b"] == "2"
        assert root.complex_attrs["c"] == [["1", "ff"]]

    def test_timing_without_related_pin_rejected(self):
        text = """
        library (demo) {
          cell (X) {
            pin (Y) { direction : output; timing () { timing_type : combinational; } }
          }
        }
        """
        with pytest.raises(LibertyError, match="related_pin"):
            parse_liberty(text)

    def test_top_level_must_be_library(self):
        with pytest.raises(LibertyError, match="library"):
            parse_liberty("cell (x) { }")

    def test_unterminated_group_rejected(self):
        with pytest.raises(LibertyError):
            parse_liberty("library (l) { cell (x) {")

    def test_setup_arc_kind_parsed(self, library):
        parsed = parse_liberty(write_liberty(library))
        kinds = {a.kind for a in parsed["DFF_X1"].arcs}
        assert ArcKind.SETUP in kinds and ArcKind.HOLD in kinds

    def test_file_roundtrip(self, tmp_path, library):
        from repro.netlist import read_liberty_file, write_liberty_file

        path = str(tmp_path / "lib.lib")
        write_liberty_file(library, path)
        parsed = read_liberty_file(path)
        assert len(parsed) == len(library)
