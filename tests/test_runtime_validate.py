"""Structural design validation (repro.runtime.validate).

Each test builds a deliberately broken design with the DesignBuilder and
checks that exactly the right check fires with the right severity, that
healthy designs pass cleanly, and that the placer refuses to start on a
design with errors when ``PlacerOptions.validate`` is set.
"""

import numpy as np
import pytest

from repro.netlist import DesignBuilder
from repro.place.placer import GlobalPlacer, PlacerOptions
from repro.runtime import (
    DesignValidationError,
    ValidationReport,
    validate_design,
)
from repro.sta import CombinationalCycleError, TimingGraph


def _healthy(library):
    b = DesignBuilder("ok", library, die=(0, 0, 40, 20))
    b.add_input("clk", x=0, y=0)
    b.add_input("a", x=0, y=10)
    b.add_output("z", x=40, y=10)
    b.add_cell("u1", "INV_X1")
    b.add_net("na", ["a", "u1/A"])
    b.add_net("nz", ["u1/Y", "z"])
    return b.build()


class TestHealthyDesign:
    def test_passes(self, library):
        report = validate_design(_healthy(library))
        assert isinstance(report, ValidationReport)
        assert report.ok
        assert not report.errors
        assert "PASS" in report.format()

    def test_all_checks_ran(self, library):
        report = validate_design(_healthy(library))
        assert set(report.checks_run) >= {
            "dangling_pin",
            "undriven_net",
            "multi_driver_net",
            "zero_area_cell",
            "nldm_lut",
            "pin_outside_die",
            "combinational_cycle",
        }

    def test_generated_suite_design_passes(self):
        from repro.harness import load_design

        report = validate_design(load_design("miniblue1"))
        assert report.ok  # warnings allowed, errors not

    def test_raise_if_failed_noop_when_ok(self, library):
        validate_design(_healthy(library)).raise_if_failed()


class TestBrokenDesigns:
    def test_dangling_input_pin_is_error(self, library):
        b = DesignBuilder("dangle", library, die=(0, 0, 40, 20))
        b.add_input("clk", x=0, y=0)
        b.add_cell("u1", "INV_X1")
        # u1/A left unconnected; u1/Y unconnected too (warning only)
        d = b.build()
        report = validate_design(d, check_graph=False)
        assert not report.ok
        messages = [i.message for i in report.errors]
        assert any("u1/A" in m for m in messages)
        # The unconnected *output* must be a warning, not an error.
        assert any(
            "u1/Y" in i.message for i in report.warnings
        )

    def test_multi_driver_net_is_error(self, library):
        # The builder rejects multi-driver nets at construction, so this
        # corruption can only arrive via file loaders; emulate it by
        # flipping a sink pin's direction on a built design.
        d = _healthy(library)
        sink = d.pin_name.index("u1/A")
        assert d.pin_dir[sink] == 0
        d.pin_dir[sink] = 1  # net "na" now has drivers a/O and u1/A
        report = validate_design(d, check_graph=False)
        assert "multi_driver_net" in report.counts()
        assert not report.ok

    def test_undriven_net_is_error(self, library):
        b = DesignBuilder("undriven", library, die=(0, 0, 40, 20))
        b.add_input("clk", x=0, y=0)
        b.add_cell("u1", "INV_X1")
        b.add_cell("u2", "INV_X1")
        b.add_net("bad", ["u1/A", "u2/A"])  # sinks only
        report = validate_design(b.build(), check_graph=False)
        assert "undriven_net" in report.counts()
        assert not report.ok

    def test_combinational_cycle_reported_with_pin_names(self, library):
        b = DesignBuilder("loop", library, die=(0, 0, 40, 20))
        b.add_input("clk", x=0, y=0)
        b.add_cell("u1", "INV_X1")
        b.add_cell("u2", "INV_X1")
        b.add_net("n1", ["u1/Y", "u2/A"])
        b.add_net("n2", ["u2/Y", "u1/A"])
        report = validate_design(b.build())
        cycle_issues = [
            i for i in report.errors if i.check == "combinational_cycle"
        ]
        assert cycle_issues
        # The report names actual pins on the cycle, not just "a cycle".
        assert "u1" in cycle_issues[0].message or "u2" in cycle_issues[0].message

    def test_pin_outside_die_fixed_cell_is_error(self, library):
        b = DesignBuilder("outside", library, die=(0, 0, 40, 20))
        b.add_input("clk", x=0, y=0)
        b.add_input("a", x=-500.0, y=10)  # fixed port far outside
        b.add_output("z", x=40, y=10)
        b.add_cell("u1", "INV_X1")
        b.add_net("na", ["a", "u1/A"])
        b.add_net("nz", ["u1/Y", "z"])
        report = validate_design(b.build())
        assert "pin_outside_die" in report.counts()
        assert not report.ok

    def test_degenerate_net_is_warning_only(self, library):
        b = DesignBuilder("degen", library, die=(0, 0, 40, 20))
        b.add_input("clk", x=0, y=0)
        b.add_input("a", x=0, y=10)
        b.add_output("z", x=40, y=10)
        b.add_cell("u1", "INV_X1")
        b.add_net("na", ["a", "u1/A"])
        b.add_net("nz", ["u1/Y", "z"])
        b.add_net("lonely", ["clk"])  # single-pin net
        report = validate_design(b.build())
        assert "degenerate_net" in report.counts()
        assert report.ok  # warning does not fail the design


class TestCycleError:
    def test_levelize_raises_typed_error_naming_pins(self, library):
        b = DesignBuilder("loop", library, die=(0, 0, 40, 20))
        b.add_input("clk", x=0, y=0)
        b.add_cell("u1", "INV_X1")
        b.add_cell("u2", "INV_X1")
        b.add_net("n1", ["u1/Y", "u2/A"])
        b.add_net("n2", ["u2/Y", "u1/A"])
        d = b.build()
        with pytest.raises(CombinationalCycleError) as info:
            TimingGraph(d)
        err = info.value
        assert err.n_unreachable > 0
        assert len(err.cycle_pins) >= 2
        named = [d.pin_name[p] for p in err.cycle_pins]
        assert any(n.startswith(("u1/", "u2/")) for n in named)
        # The message itself names pins from the cycle.
        assert any(n in str(err) for n in named)
        # Backwards compatible with except ValueError handlers.
        assert isinstance(err, ValueError)


class TestPlacerIntegration:
    def test_placer_refuses_invalid_design(self, library):
        b = DesignBuilder("dangle", library, die=(0, 0, 40, 20))
        b.add_input("clk", x=0, y=0)
        b.add_input("a", x=0, y=10)
        b.add_cell("u1", "INV_X1")
        b.add_cell("u2", "INV_X1")
        b.add_net("na", ["a", "u1/A"])
        # u2/A dangling input -> validation error
        opts = PlacerOptions(max_iters=5, validate=True)
        with pytest.raises(DesignValidationError) as info:
            GlobalPlacer(b.build(), opts).run()
        assert not info.value.report.ok

    def test_placer_attaches_report_on_pass(self, small_design):
        opts = PlacerOptions(max_iters=5, min_iters=1, validate=True)
        result = GlobalPlacer(small_design, opts).run()
        assert result.validation is not None
        assert result.validation.ok

    def test_report_example_cap(self, library):
        b = DesignBuilder("many", library, die=(0, 0, 40, 20))
        b.add_input("clk", x=0, y=0)
        for k in range(20):
            b.add_cell(f"u{k}", "INV_X1")  # 20 dangling inputs
        report = validate_design(b.build(), check_graph=False)
        errors = [i for i in report.errors if i.check == "dangling_pin"]
        # Capped listing plus a "... and N more" summary line.
        assert len(errors) <= 9
        assert any("more" in i.message for i in errors)
