"""Unit tests for critical-path extraction and reporting."""

import numpy as np
import pytest

from repro.sta import extract_path, format_path, run_sta, worst_paths


@pytest.fixture(scope="module")
def chain_result(chain_design):
    return run_sta(chain_design)


class TestExtraction:
    def test_path_starts_at_start_point(self, chain_design, chain_result):
        path = extract_path(chain_result, int(chain_result.graph.endpoint_pins[0]))
        assert path.points[0].arc_kind == "start"
        assert path.points[0].pin_name in ("in0/O", "ff0/CK")

    def test_path_alternates_net_and_cell_arcs(self, chain_result):
        path = extract_path(chain_result, int(chain_result.graph.endpoint_pins[0]))
        kinds = [p.arc_kind for p in path.points[1:]]
        for a, b in zip(kinds, kinds[1:]):
            assert a != b  # chain design strictly alternates

    def test_increments_sum_to_path_delay(self, chain_result):
        path = extract_path(chain_result, int(chain_result.graph.endpoint_pins[0]))
        total = sum(p.incr for p in path.points)
        assert total == pytest.approx(path.delay, abs=1e-6)

    def test_at_values_monotone(self, chain_result):
        path = extract_path(chain_result, int(chain_result.graph.endpoint_pins[0]))
        ats = [p.at for p in path.points]
        assert all(b >= a - 1e-9 for a, b in zip(ats, ats[1:]))

    def test_slack_matches_endpoint_slack(self, chain_result):
        graph = chain_result.graph
        for k, ep in enumerate(graph.endpoint_pins):
            path = extract_path(chain_result, int(ep))
            assert path.slack == pytest.approx(
                float(chain_result.endpoint_slack[k]), abs=1e-9
            )

    def test_inverter_chain_flips_transitions(self, chain_result):
        path = extract_path(chain_result, int(chain_result.graph.endpoint_pins[0]))
        cell_points = [p for p in path.points if p.arc_kind == "cell"]
        for a, b in zip(cell_points, cell_points[1:]):
            assert a.transition != b.transition


class TestWorstPaths:
    def test_sorted_by_slack(self, small_design):
        result = run_sta(small_design)
        paths = worst_paths(result, k=5)
        slacks = [p.slack for p in paths]
        assert slacks == sorted(slacks)
        assert slacks[0] == pytest.approx(result.wns_setup)

    def test_path_through_generated_design_terminates(self, small_design):
        result = run_sta(small_design)
        for path in worst_paths(result, k=3):
            assert 2 <= path.length <= small_design.n_pins


class TestFormatting:
    def test_format_contains_pins_and_slack(self, chain_result):
        path = worst_paths(chain_result, 1)[0]
        text = format_path(path)
        assert "slack" in text
        for p in path.points:
            assert p.pin_name in text

    def test_format_has_one_row_per_point(self, chain_result):
        path = worst_paths(chain_result, 1)[0]
        text = format_path(path)
        assert len(text.splitlines()) == path.length + 2
