"""Transform-level identity tests for the planned DCT pipeline.

These pin the rfft-based Makhoul DCT-II/III plans and the spectral
derivative against scipy's C transforms (and an explicit analytic
derivative matrix) at fp64 machine precision, including odd lengths -
the placement-level planned-vs-scipy gate (`verify-density`) builds on
this identity.
"""

import numpy as np
import pytest
import scipy.fft

from repro.core.fftplan import Dct2Plan, SpectralGridPlan

SIZES = [2, 5, 17, 64, 128]


def _rows(n, rows=3, seed=0):
    return np.random.default_rng(seed + n).standard_normal((rows, n))


class TestDct2Plan:
    def test_rejects_degenerate_length(self):
        with pytest.raises(ValueError, match="n >= 2"):
            Dct2Plan(1)

    @pytest.mark.parametrize("n", SIZES)
    def test_forward_matches_scipy_dct2(self, n):
        a = _rows(n)
        got = Dct2Plan(n).forward(a)
        ref = scipy.fft.dct(a, type=2, norm="ortho", axis=-1)
        np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-13)

    @pytest.mark.parametrize("n", SIZES)
    def test_inverse_matches_scipy_dct3(self, n):
        coeff = _rows(n, seed=10)
        got = Dct2Plan(n).inverse(coeff)
        ref = scipy.fft.idct(coeff, type=2, norm="ortho", axis=-1)
        np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-13)

    @pytest.mark.parametrize("n", SIZES)
    def test_roundtrip_is_identity(self, n):
        a = _rows(n, seed=20)
        plan = Dct2Plan(n)
        np.testing.assert_allclose(
            plan.inverse(plan.forward(a)), a, rtol=1e-12, atol=1e-13
        )

    @pytest.mark.parametrize("n", SIZES)
    def test_inverse_deriv_matches_analytic_matrix(self, n):
        """The IDXST path equals -d/ds of the cosine interpolant.

        The ortho DCT-III reconstruction at sample point s_j=(2j+1)/2 is
        sum_k f(k) * X[k] * cos(pi k s_j / n); differentiating in s pulls
        out -(pi k / n) sin(pi k s_j / n), so `inverse_deriv` (the field,
        -d(phi)/ds) is the explicit positive sine matrix below.
        """
        coeff = _rows(n, seed=30)
        fnorm = np.full(n, np.sqrt(2.0 / n))
        fnorm[0] = np.sqrt(1.0 / n)
        j = np.arange(n)[:, None]
        k = np.arange(n)[None, :]
        M = fnorm * (np.pi * k / n) * np.sin(np.pi * k * (2 * j + 1) / (2 * n))
        dref = coeff @ M.T
        got = Dct2Plan(n).inverse_deriv(coeff)
        np.testing.assert_allclose(got, dref, rtol=1e-10, atol=1e-11)

    def test_fp32_plan_preserves_dtype(self):
        n = 64
        a = _rows(n, seed=40).astype(np.float32)
        plan = Dct2Plan(n, dtype=np.float32)
        fwd = plan.forward(a)
        assert fwd.dtype == np.float32
        inv = plan.inverse(fwd)
        assert inv.dtype == np.float32
        ref = scipy.fft.dct(a.astype(np.float64), type=2, norm="ortho")
        np.testing.assert_allclose(fwd, ref, rtol=2e-5, atol=2e-5)
        np.testing.assert_allclose(inv, a, rtol=2e-5, atol=2e-5)

    def test_outputs_are_scratch_views(self):
        """Documented contract: outputs are overwritten by the next call."""
        plan = Dct2Plan(8)
        a = _rows(8, seed=50)
        first = plan.forward(a)
        snapshot = first.copy()
        plan.forward(a + 1.0)
        assert not np.allclose(first, snapshot)


class TestSpectralGridPlan:
    @pytest.mark.parametrize("n", [5, 17, 64, 128])
    def test_dct2_idct2_match_scipy_dctn(self, n):
        a = np.random.default_rng(n).standard_normal((n, n))
        plan = SpectralGridPlan(n)
        np.testing.assert_allclose(
            plan.dct2(a),
            scipy.fft.dctn(a, type=2, norm="ortho"),
            rtol=1e-12,
            atol=1e-13,
        )
        coeff = np.random.default_rng(n + 1).standard_normal((n, n))
        np.testing.assert_allclose(
            plan.idct2(coeff),
            scipy.fft.idctn(coeff, type=2, norm="ortho"),
            rtol=1e-12,
            atol=1e-13,
        )

    @pytest.mark.parametrize("n", [17, 64])
    def test_poisson_field_matches_reference_solve(self, n):
        """Planned potential == scipy DCT solve; field == exact d(phi)/ds."""
        rng = np.random.default_rng(100 + n)
        rho = rng.random((n, n))
        denom = (
            2.0 - 2.0 * np.cos(np.pi * np.arange(n) / n)
        )[:, None] + (2.0 - 2.0 * np.cos(np.pi * np.arange(n) / n))[None, :]
        denom[0, 0] = 1.0
        inv = 1.0 / denom
        inv[0, 0] = 0.0
        inv_t = np.ascontiguousarray(inv.T)

        plan = SpectralGridPlan(n)
        coeff_t, pot_t, ex_t, ey, phi = plan.poisson_field(
            rho, inv_t, want_potential=True
        )

        # coeff_t keeps the raw-rho DC; inv's zero DC slot projects the
        # mean out of the potential, so phi matches the mean-subtracted
        # reference solve exactly.
        coeff_ref = scipy.fft.dctn(rho, type=2, norm="ortho")
        pot_coeff = coeff_ref * inv
        phi_ref = scipy.fft.idctn(pot_coeff, type=2, norm="ortho")
        np.testing.assert_allclose(phi, phi_ref, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(
            coeff_t, coeff_ref.T, rtol=1e-10, atol=1e-12
        )
        np.testing.assert_allclose(pot_t, pot_coeff.T, rtol=1e-10, atol=1e-12)

        # Field = -d(phi)/ds per axis at unit pitch, via the analytic
        # sine matrix of the cosine interpolant (see Dct2Plan test).
        fnorm = np.full(n, np.sqrt(2.0 / n))
        fnorm[0] = np.sqrt(1.0 / n)
        j = np.arange(n)[:, None]
        k = np.arange(n)[None, :]
        M = fnorm * (np.pi * k / n) * np.sin(np.pi * k * (2 * j + 1) / (2 * n))
        half_x = scipy.fft.idct(pot_coeff, type=2, norm="ortho", axis=1)
        ex_ref = M @ half_x  # [x, y]; ex_t is stored transposed [y, x]
        np.testing.assert_allclose(ex_t.T, ex_ref, rtol=1e-9, atol=1e-11)
        half_y = scipy.fft.idct(pot_coeff, type=2, norm="ortho", axis=0)
        ey_ref = half_y @ M.T  # [x, y]
        np.testing.assert_allclose(ey, ey_ref, rtol=1e-9, atol=1e-11)

    def test_parseval_energy_identity(self):
        """sum(coeff * pot_coeff) == sum(source * phi) for ortho DCTs."""
        n = 32
        rng = np.random.default_rng(7)
        rho = rng.random((n, n))
        denom = (
            2.0 - 2.0 * np.cos(np.pi * np.arange(n) / n)
        )[:, None] + (2.0 - 2.0 * np.cos(np.pi * np.arange(n) / n))[None, :]
        denom[0, 0] = 1.0
        inv = 1.0 / denom
        inv[0, 0] = 0.0
        plan = SpectralGridPlan(n)
        coeff_t, pot_t, _, _, phi = plan.poisson_field(
            rho, np.ascontiguousarray(inv.T), want_potential=True
        )
        spectral = float(np.sum(coeff_t * pot_t))
        grid = float(np.sum((rho - rho.mean()) * phi))
        assert spectral == pytest.approx(grid, rel=1e-12)
