"""Unit tests for the timing objective hook and the full timing placer."""

import numpy as np
import pytest

from repro.core import (
    TimingDrivenPlacer,
    TimingObjective,
    TimingObjectiveOptions,
    TimingPlacerOptions,
)
from repro.place import GlobalPlacer, PlacerOptions
from repro.sta import run_sta


class TestTimingObjectiveHook:
    def test_inactive_before_start(self, small_design, spread_positions):
        x, y = spread_positions
        obj = TimingObjective(
            small_design, TimingObjectiveOptions(start_iteration=100)
        )
        assert obj(0, x, y) is None
        assert obj(99, x, y) is None
        assert obj.n_timer_calls == 0

    def test_active_after_start(self, small_design, spread_positions):
        x, y = spread_positions
        obj = TimingObjective(
            small_design, TimingObjectiveOptions(start_iteration=10)
        )
        out = obj(10, x, y, wl_grad_l1=100.0)
        assert out is not None
        gx, gy, metrics = out
        assert gx.shape == (small_design.n_cells,)
        assert "tns_smoothed" in metrics and "wns_smoothed" in metrics
        assert metrics["tns_smoothed"] < 0

    def test_forest_reuse_period(self, small_design, spread_positions):
        x, y = spread_positions
        obj = TimingObjective(
            small_design,
            TimingObjectiveOptions(start_iteration=0, rsmt_period=10),
        )
        for it in range(25):
            obj(it, x, y, wl_grad_l1=100.0)
        assert obj.n_timer_calls == 25
        assert obj.n_rsmt_calls == 3  # iterations 0, 10, 20

    def test_gradient_norm_normalised_to_fraction(
        self, small_design, spread_positions
    ):
        x, y = spread_positions
        opts = TimingObjectiveOptions(
            start_iteration=0, tns_grad_frac=0.1, wns_grad_frac=0.0
        )
        obj = TimingObjective(small_design, opts)
        gx, gy, _ = obj(0, x, y, wl_grad_l1=500.0)
        norm = np.abs(gx).sum() + np.abs(gy).sum()
        # Per-cell clipping may only shrink the normalised gradient.
        assert norm <= 0.1 * 500.0 + 1e-6
        assert norm > 0.5 * 0.1 * 500.0

    def test_ramp_grows_then_freezes(self, small_design, spread_positions):
        x, y = spread_positions
        opts = TimingObjectiveOptions(start_iteration=0, ramp=1.05)
        obj = TimingObjective(small_design, opts)
        _, _, m0 = obj(0, x, y, wl_grad_l1=100.0)
        _, _, m5 = obj(5, x, y, wl_grad_l1=100.0)
        assert m5["tns_frac"] > m0["tns_frac"]
        obj.observe_overflow(6, 0.1)  # below freeze threshold
        _, _, m10 = obj(10, x, y, wl_grad_l1=100.0)
        _, _, m20 = obj(20, x, y, wl_grad_l1=100.0)
        assert m20["tns_frac"] == pytest.approx(m10["tns_frac"])

    def test_frac_ceiling(self, small_design, spread_positions):
        x, y = spread_positions
        opts = TimingObjectiveOptions(
            start_iteration=0, ramp=2.0, grad_frac_max=0.3
        )
        obj = TimingObjective(small_design, opts)
        _, _, metrics = obj(50, x, y, wl_grad_l1=100.0)
        assert metrics["tns_frac"] == pytest.approx(0.3)

    def test_weights_at_matches_paper_ramp(self, small_design):
        opts = TimingObjectiveOptions(start_iteration=100, t1=0.02, t2=0.01)
        obj = TimingObjective(small_design, opts)
        t1_0, t2_0 = obj.weights_at(100)
        t1_10, t2_10 = obj.weights_at(110)
        assert t1_0 == pytest.approx(0.02)
        assert t1_10 == pytest.approx(0.02 * 1.01**10)
        assert t2_10 / t2_0 == pytest.approx(1.01**10)


class TestTimingDrivenPlacer:
    def test_improves_timing_over_baseline(self, medium_design):
        popts = PlacerOptions(max_iters=450, seed=0)
        base = GlobalPlacer(medium_design, popts).run()
        ours = TimingDrivenPlacer(
            medium_design, TimingPlacerOptions(placer=popts, sta_in_trace=False)
        ).run()
        rb = run_sta(medium_design, base.x, base.y)
        ro = run_sta(medium_design, ours.x, ours.y)
        assert ro.tns_setup > rb.tns_setup
        assert ro.wns_setup > rb.wns_setup

    def test_trace_has_smoothed_metrics(self, medium_design):
        opts = TimingPlacerOptions(
            placer=PlacerOptions(max_iters=150),
            timing=TimingObjectiveOptions(start_iteration=50),
            sta_in_trace=True,
            sta_every=25,
        )
        result = TimingDrivenPlacer(medium_design, opts).run()
        assert any("tns_smoothed" in t for t in result.trace)
        assert any("wns" in t for t in result.trace)

    def test_converges_to_overflow(self, medium_design):
        opts = TimingPlacerOptions(
            placer=PlacerOptions(max_iters=600), sta_in_trace=False
        )
        result = TimingDrivenPlacer(medium_design, opts).run()
        assert result.stop_reason == "overflow"
