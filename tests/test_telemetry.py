"""Tests for the unified telemetry subsystem (:mod:`repro.telemetry`)."""

import glob
import json
import os

import numpy as np
import pytest

from repro.harness import load_design
from repro.harness.runners import run_mode
from repro.place.placer import GlobalPlacer, PlacerOptions
from repro.telemetry import (
    EVENT_KINDS,
    MetricsRecorder,
    RunManifest,
    current_recorder,
    iteration_series,
    load_manifest,
    make_run_id,
    read_events,
    read_events_partial,
    recording,
    start_run,
    write_manifest,
)
from repro.telemetry.compare import compare_runs
from repro.telemetry.report import render_report


class TestMetricsRecorder:
    def test_every_event_round_trips_with_required_fields(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with MetricsRecorder(path) as rec:
            rec.event("run_start", iteration=0, design="d", seed=1)
            rec.iteration(0, {"hpwl": 1.5, "overflow": np.float64(0.9)})
            rec.counter("rsmt_rebuilds", np.int64(3), iteration=0)
            rec.event("quarantine", iteration=2, term="timing", bad_entries=4)
            rec.event("recovery", action="checkpoint_rollback",
                      target_iteration=1)
            rec.event("run_end", iteration=5, stop_reason="max_iters")
        # Raw lines are one JSON object each (the schema contract).
        with open(path) as fh:
            lines = [line for line in fh if line.strip()]
        assert len(lines) == 6
        for line in lines:
            record = json.loads(line)
            assert record["kind"] in EVENT_KINDS
            assert isinstance(record["ts"], float)
            # Schema v2: every event also carries a monotonic stamp.
            assert isinstance(record["ts_mono"], float)
            assert "iteration" in record
            assert record["iteration"] is None or isinstance(
                record["iteration"], int
            )
        monos = [json.loads(line)["ts_mono"] for line in lines]
        assert monos == sorted(monos), "ts_mono must be non-decreasing"
        events = read_events(path)
        assert events[1]["metrics"]["overflow"] == pytest.approx(0.9)
        assert events[2]["value"] == 3
        assert events[4]["iteration"] is None

    def test_unknown_kind_rejected(self, tmp_path):
        rec = MetricsRecorder(str(tmp_path / "e.jsonl"))
        with pytest.raises(ValueError, match="unknown event kind"):
            rec.event("bogus")

    def test_truncate_from_drops_only_late_iterations(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        rec = MetricsRecorder(path)
        rec.event("run_start", iteration=0)
        for it in range(6):
            rec.iteration(it, {"hpwl": float(it)})
        rec.event("recovery", action="checkpoint_rollback",
                  fault_iteration=5, target_iteration=3)
        assert rec.truncate_from(3) == 3
        rec.iteration(3, {"hpwl": 30.0})
        rec.close()
        events = read_events(path)
        its = [e["iteration"] for e in events if e["kind"] == "iteration"]
        assert its == [0, 1, 2, 3]
        # The iteration-less recovery record survives truncation.
        assert any(e["kind"] == "recovery" for e in events)
        xs, ys = iteration_series(events)["hpwl"]
        assert xs == [0, 1, 2, 3] and ys[-1] == 30.0

    def test_read_events_partial_tolerates_torn_tail(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with MetricsRecorder(path) as rec:
            rec.event("run_start", iteration=0)
            rec.iteration(0, {"hpwl": 1.0})
        with open(path, "a") as fh:
            fh.write('{"ts": 1.0, "kind": "iterat')  # writer mid-record
        events, skipped = read_events_partial(path)
        assert [e["kind"] for e in events] == ["run_start", "iteration"]
        assert skipped == 1
        # read_events drops the torn tail silently (safe live reads) ...
        assert [e["kind"] for e in read_events(path)] == \
            ["run_start", "iteration"]
        # ... but mid-file corruption is never silently skipped.
        with open(path, "w") as fh:
            fh.write("garbage\n")
            fh.write('{"ts": 1.0, "ts_mono": 1.0, "kind": "run_end", '
                     '"iteration": null}\n')
        with pytest.raises(json.JSONDecodeError):
            read_events_partial(path)

    def test_recording_arms_and_restores(self, tmp_path):
        assert current_recorder() is None
        with MetricsRecorder(str(tmp_path / "e.jsonl")) as rec:
            with recording(rec):
                assert current_recorder() is rec
            assert current_recorder() is None


class TestManifest:
    def test_round_trip(self, tmp_path):
        manifest = RunManifest.create(
            design="d", mode="ours", seed=3, options={"max_iters": 9}
        )
        manifest.final_metrics = {"hpwl": 1.0}
        write_manifest(manifest, str(tmp_path))
        loaded = load_manifest(str(tmp_path))
        assert loaded.design == "d"
        assert loaded.seed == 3
        assert loaded.options == {"max_iters": 9}
        assert loaded.final_metrics == {"hpwl": 1.0}
        assert loaded.schema_version == manifest.schema_version
        assert loaded.python_version and loaded.numpy_version

    def test_make_run_id_unique_and_descriptive(self):
        a = make_run_id("miniblue1", "ours")
        b = make_run_id("miniblue1", "ours")
        assert a != b
        assert a.startswith("miniblue1_ours_")


class TestPlacerIntegration:
    def test_iteration_events_match_trace(self, small_design, tmp_path):
        path = str(tmp_path / "events.jsonl")
        opts = PlacerOptions(max_iters=12, min_iters=2, seed=1)
        with MetricsRecorder(path) as rec, recording(rec):
            result = GlobalPlacer(small_design, opts).run()
        events = read_events(path)
        assert events[0]["kind"] == "run_start"
        assert events[-1]["kind"] == "run_end"
        xs, ys = iteration_series(events)["hpwl"]
        it_trace, hp_trace = result.series("hpwl")
        np.testing.assert_array_equal(np.asarray(xs, float), it_trace)
        np.testing.assert_array_equal(np.asarray(ys), hp_trace)
        end = events[-1]
        assert end["stop_reason"] == result.stop_reason
        assert end["iterations"] == result.iterations

    def test_resume_appends_without_duplicates(self, small_design, tmp_path):
        """A resumed run's stream holds each iteration exactly once."""
        cp_dir = tmp_path / "ckpt"
        run_dir = tmp_path / "run"
        opts = dict(max_iters=30, min_iters=5, seed=3)

        session = start_run(
            str(run_dir), design="small", mode="dreamplace", seed=3,
            run_id="orig",
        )
        with recording(session.recorder):
            GlobalPlacer(
                small_design,
                PlacerOptions(
                    checkpoint_every=10, checkpoint_dir=str(cp_dir), **opts
                ),
            ).run()
        session.finalize()

        checkpoint = str(cp_dir / glob.glob1(str(cp_dir), "*iter000020*")[0])
        resumed = start_run(
            str(run_dir / "orig"), design="small", mode="dreamplace",
            seed=3, resume=True,
        )
        assert resumed.run_dir == str(run_dir / "orig")
        with recording(resumed.recorder):
            GlobalPlacer(
                small_design,
                PlacerOptions(resume_from=checkpoint, **opts),
            ).run()
        resumed.finalize()

        events = read_events(os.path.join(resumed.run_dir, "events.jsonl"))
        its = [e["iteration"] for e in events if e["kind"] == "iteration"]
        assert its == sorted(set(its)), "duplicated iterations after resume"
        assert its == list(range(its[-1] + 1))
        # Both the original and the resumed segment are present.
        starts = [e for e in events if e["kind"] == "run_start"]
        assert [s["resumed"] for s in starts] == [False, True]


class TestRunModeTelemetry:
    @pytest.fixture(scope="class")
    def run_pair(self, tmp_path_factory):
        """Two identical-seed + one perturbed-seed instrumented runs."""
        base = tmp_path_factory.mktemp("telemetry")
        design = load_design("miniblue1")

        def one(run_id, seed):
            return run_mode(
                design,
                "ours",
                placer_options=PlacerOptions(
                    max_iters=60, min_iters=5, seed=seed
                ),
                telemetry_dir=str(base),
                run_id=run_id,
            )
        records = {rid: one(rid, seed) for rid, seed in
                   (("a", 0), ("b", 0), ("c", 9))}
        return base, records

    def test_run_mode_produces_manifest_and_stream(self, run_pair):
        base, records = run_pair
        record = records["a"]
        assert record.run_dir == str(base / "a")
        manifest = load_manifest(record.run_dir)
        assert manifest.design == "miniblue1"
        assert manifest.mode == "ours"
        assert manifest.wall_clock_s is not None
        assert manifest.final_metrics["wns"] == pytest.approx(record.wns)
        assert manifest.final_metrics["stop_reason"] == record.stop_reason
        assert manifest.span_tree["children"], "span tree is empty"
        events = read_events(os.path.join(record.run_dir, "events.jsonl"))
        kinds = {e["kind"] for e in events}
        assert {"run_start", "iteration", "run_end"} <= kinds

    def test_report_renders_markdown_and_curves(self, run_pair, tmp_path):
        base, records = run_pair
        out = str(tmp_path / "report")
        markdown = render_report(records["a"].run_dir, out_dir=out)
        assert "# Run report: a" in markdown
        assert "## Span tree" in markdown
        assert os.path.exists(os.path.join(out, "report.md"))
        assert os.path.exists(os.path.join(out, "curve_hpwl.svg"))

    def test_compare_identical_seeds_ok(self, run_pair):
        base, _ = run_pair
        result = compare_runs(str(base / "a"), str(base / "b"))
        assert result.ok, result.format()
        assert "result: OK" in result.format()

    def test_compare_perturbed_seed_regresses(self, run_pair):
        base, _ = run_pair
        result = compare_runs(str(base / "a"), str(base / "c"))
        assert not result.ok
        text = result.format()
        assert "REGRESSION" in text

    def test_compare_span_rtol_gates_timing(self, run_pair):
        base, _ = run_pair
        # Wall-clock never reproduces at rtol=0 between two real runs.
        result = compare_runs(str(base / "a"), str(base / "b"),
                              span_rtol=0.0)
        assert any("span" in r for r in result.regressions)


class TestProfileDumps:
    def test_profile_files_unique_with_latest_pointer(
        self, small_design, tmp_path
    ):
        prof_dir = str(tmp_path / "profiles")
        popts = PlacerOptions(max_iters=6, min_iters=2)
        for _ in range(2):
            run_mode(small_design, "dreamplace", placer_options=popts,
                     profile=True, profile_dir=prof_dir)
        dumps = sorted(glob.glob(os.path.join(
            prof_dir, "profile_small_dreamplace_*.txt")))
        latest = os.path.join(prof_dir, "profile_small_dreamplace_latest.txt")
        assert latest in dumps
        dumps.remove(latest)
        assert len(dumps) == 2, "each --profile run must keep its own dump"
        if os.path.islink(latest):
            target = os.path.join(prof_dir, os.readlink(latest))
        else:  # pointer-file fallback on symlink-less filesystems
            with open(latest) as fh:
                target = os.path.join(prof_dir, fh.read().strip())
        assert os.path.realpath(target) in [os.path.realpath(d) for d in dumps]
        with open(target) as fh:
            text = fh.read()
        # Both the flat table and the hierarchical span section are dumped.
        assert "dreamplace" in text
        assert "spans" in text


class TestSeriesKeyError:
    def test_unknown_series_key_raises_with_available_keys(
        self, small_design
    ):
        result = GlobalPlacer(
            small_design, PlacerOptions(max_iters=4, min_iters=1)
        ).run()
        with pytest.raises(KeyError, match="available keys.*hpwl"):
            result.series("tns_smoothed")
