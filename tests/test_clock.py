"""Tests for propagated (non-ideal) clock analysis."""

import numpy as np
import pytest

from repro.netlist import Constraints, DesignBuilder, make_chain_design
from repro.sta import run_sta
from repro.sta.clock import propagate_clock
from repro.sta.graph import TimingGraph


class TestClockPropagation:
    def test_sinks_identified(self, small_design, spread_positions):
        x, y = spread_positions
        graph = TimingGraph(small_design)
        ck = propagate_clock(small_design, graph, x, y)
        n_ff = sum(
            1
            for c in range(small_design.n_cells)
            if small_design.cell_type_of(c).is_sequential
        )
        assert int(ck.is_clock_sink.sum()) == n_ff

    def test_nonzero_skew_when_ffs_spread(self, small_design, spread_positions):
        x, y = spread_positions
        graph = TimingGraph(small_design)
        ck = propagate_clock(small_design, graph, x, y)
        assert ck.skew > 0
        assert (ck.at[ck.is_clock_sink] >= 0).all()

    def test_insertion_grows_with_distance(self, library):
        """An FF farther from the clock source sees a later clock edge."""
        constraints = Constraints(clock_period=500.0, clock_port="clk")
        b = DesignBuilder("two_ffs", library, die=(0, 0, 100, 20),
                          constraints=constraints)
        b.add_input("clk", x=0.0, y=10.0)
        b.add_input("d", x=0.0, y=5.0)
        b.add_output("q", x=100.0, y=5.0)
        b.add_cell("near", "DFF_X1", x=10.0, y=10.0)
        b.add_cell("far", "DFF_X1", x=90.0, y=10.0)
        b.add_net("nd", ["d", "near/D"])
        b.add_net("nm", ["near/Q", "far/D"])
        b.add_net("nq", ["far/Q", "q"])
        b.add_net("clknet", ["clk", "near/CK", "far/CK"])
        design = b.build()
        graph = TimingGraph(design)
        ck = propagate_clock(design, graph)
        near_ck = design.pin_name.index("near/CK")
        far_ck = design.pin_name.index("far/CK")
        assert ck.at[far_ck] > ck.at[near_ck] > 0
        assert ck.slew[far_ck] > ck.slew[near_ck]

    def test_clock_slew_at_least_source_slew(self, small_design, spread_positions):
        x, y = spread_positions
        graph = TimingGraph(small_design)
        ck = propagate_clock(small_design, graph, x, y)
        source = small_design.constraints.input_slew(
            small_design.constraints.clock_port
        )
        assert (ck.slew[ck.is_clock_sink] >= source - 1e-9).all()


class TestPropagatedClockSTA:
    def test_ff_to_ff_paths_see_cancelling_skew(self, library):
        """Launch and capture from the same CK pin: insertion cancels."""
        d = make_chain_design(3)
        ideal = run_sta(d)
        # Place the clock port on top of the FF: zero insertion delay.
        clk = d.cell_index("clk")
        ff = d.cell_index("ff0")
        x = d.cell_x.copy()
        y = d.cell_y.copy()
        x[clk], y[clk] = x[ff], y[ff]
        prop = run_sta(d, x, y, propagated_clock=True)
        ideal2 = run_sta(d, x, y)
        assert prop.wns_setup == pytest.approx(ideal2.wns_setup, abs=1.0)

    def test_useful_skew_helps_capture(self, small_design, spread_positions):
        """Capture-side insertion delay adds slack to PI->FF paths."""
        x, y = spread_positions
        ideal = run_sta(small_design, x, y, compute_hold=True)
        prop = run_sta(
            small_design, x, y, compute_hold=True, propagated_clock=True
        )
        # Hold gets uniformly harder by the capture insertion delay.
        assert prop.wns_hold <= ideal.wns_hold + 1e-9
        # Results differ (the clock is really propagated).
        assert prop.wns_setup != pytest.approx(ideal.wns_setup)
        assert prop.clock is not None and prop.clock.skew > 0

    def test_ideal_mode_unchanged_by_feature(self, small_design, spread_positions):
        x, y = spread_positions
        r1 = run_sta(small_design, x, y)
        r2 = run_sta(small_design, x, y, propagated_clock=False)
        assert r1.wns_setup == pytest.approx(r2.wns_setup)
        assert r2.clock is None

    def test_launch_arrival_includes_insertion(self, library):
        constraints = Constraints(clock_period=1000.0, clock_port="clk")
        b = DesignBuilder("launch", library, die=(0, 0, 120, 20),
                          constraints=constraints)
        b.add_input("clk", x=0.0, y=10.0)
        b.add_output("q", x=120.0, y=10.0)
        b.add_cell("ff", "DFF_X1", x=100.0, y=10.0)
        b.add_input("d", x=0.0, y=5.0)
        b.add_net("nd", ["d", "ff/D"])
        b.add_net("nq", ["ff/Q", "q"])
        b.add_net("clknet", ["clk", "ff/CK"])
        design = b.build()
        ideal = run_sta(design)
        prop = run_sta(design, propagated_clock=True)
        q_pin = design.pin_name.index("q/I")
        # The FF sits 100 um from the clock source: its Q (and the output
        # port) launch later by the insertion delay.
        assert prop.at[q_pin].max() > ideal.at[q_pin].max() + 1.0
