"""Unit tests for the DEF subset reader/writer."""

import numpy as np
import pytest

from repro.netlist.def_io import (
    DefError,
    apply_def_placement,
    parse_def,
    read_def_file,
    write_def,
    write_def_file,
)


class TestWriteParse:
    def test_roundtrip_positions(self, small_design, spread_positions):
        x, y = spread_positions
        text = write_def(small_design, x, y)
        data = parse_def(text)
        assert data.design == small_design.name
        x2, y2 = apply_def_placement(small_design, data)
        # DEF uses integer database units (1000/um): 0.5e-3 um rounding.
        np.testing.assert_allclose(x2, x, atol=1e-3)
        np.testing.assert_allclose(y2, y, atol=1e-3)

    def test_die_area_roundtrip(self, small_design):
        data = parse_def(write_def(small_design))
        assert data.die == pytest.approx(small_design.die, abs=1e-3)

    def test_component_count(self, small_design):
        data = parse_def(write_def(small_design))
        n_ports = int(small_design.cell_is_port.sum())
        assert len(data.components) == small_design.n_cells - n_ports
        assert len(data.pins) == n_ports

    def test_fixed_flag_preserved(self, small_design):
        data = parse_def(write_def(small_design))
        for name, (_, _, _, fixed) in data.components.items():
            ci = small_design.cell_index(name)
            assert fixed == bool(small_design.cell_fixed[ci])

    def test_cell_types_recorded(self, small_design):
        data = parse_def(write_def(small_design))
        for name, (ctype, _, _, _) in data.components.items():
            ci = small_design.cell_index(name)
            assert ctype == small_design.cell_type_of(ci).name

    def test_rows_emitted(self, small_design):
        data = parse_def(write_def(small_design))
        xl, yl, xh, yh = small_design.die
        assert len(data.rows) == int((yh - yl) / small_design.row_height)

    def test_pin_directions(self, small_design):
        data = parse_def(write_def(small_design))
        directions = {d for _, _, d in data.pins.values()}
        assert directions == {"INPUT", "OUTPUT"}

    def test_file_roundtrip(self, tmp_path, small_design):
        path = str(tmp_path / "d.def")
        write_def_file(small_design, path)
        data = read_def_file(path)
        assert data.design == small_design.name


class TestParserRobustness:
    def test_comments_ignored(self):
        text = (
            "VERSION 5.8 ; # comment\n"
            "DESIGN demo ;\n"
            "UNITS DISTANCE MICRONS 2000 ;\n"
            "DIEAREA ( 0 0 ) ( 20000 10000 ) ;\n"
            "COMPONENTS 1 ;\n"
            "- u1 INV_X1 + PLACED ( 2000 4000 ) N ;\n"
            "END COMPONENTS\n"
            "END DESIGN\n"
        )
        data = parse_def(text)
        assert data.units == 2000
        assert data.die == (0.0, 0.0, 10.0, 5.0)
        assert data.components["u1"] == ("INV_X1", 1.0, 2.0, False)

    def test_nets_section_skipped(self):
        text = (
            "DESIGN demo ;\n"
            "UNITS DISTANCE MICRONS 1000 ;\n"
            "NETS 1 ;\n"
            "- n1 ( u1 A ) ( u2 Y ) ;\n"
            "END NETS\n"
            "COMPONENTS 1 ;\n"
            "- u1 INV_X1 + FIXED ( 0 0 ) N ;\n"
            "END COMPONENTS\n"
            "END DESIGN\n"
        )
        data = parse_def(text)
        assert data.components["u1"][3] is True

    def test_malformed_components_rejected(self):
        text = (
            "DESIGN demo ;\n"
            "COMPONENTS 1 ;\n"
            "u1 INV_X1 + PLACED ( 0 0 ) N ;\n"
            "END COMPONENTS\n"
        )
        with pytest.raises(DefError):
            parse_def(text)

    def test_apply_ignores_unknown_components(self, small_design):
        data = parse_def(write_def(small_design))
        data.components["ghost"] = ("INV_X1", 1.0, 1.0, False)
        x, y = apply_def_placement(small_design, data)
        assert len(x) == small_design.n_cells
