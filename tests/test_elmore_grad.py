"""Finite-difference validation of the Elmore backward pass (Eq. (8))."""

import numpy as np
import pytest

from repro.core.elmore_grad import elmore_backward
from repro.route import build_forest
from repro.sta.elmore import elmore_forward, node_caps


@pytest.fixture(scope="module")
def setup(small_design):
    rng = np.random.default_rng(0)
    x = small_design.cell_x + rng.normal(0, 8, small_design.n_cells)
    y = small_design.cell_y + rng.normal(0, 8, small_design.n_cells)
    forest = build_forest(small_design, x, y)
    px, py = small_design.pin_positions(x, y)
    nx, ny = forest.node_coords(px, py)
    # Nudge nodes off coincidence so the |dx| kink is not probed.
    nx = nx + rng.normal(0, 0.01, forest.n_nodes)
    ny = ny + rng.normal(0, 0.01, forest.n_nodes)
    caps = node_caps(forest, small_design.pin_cap)
    wire = small_design.library.wire
    return small_design, forest, nx, ny, caps, wire, rng


def objective_factory(forest, caps, wire, cd, ci, cl):
    def objective(nx, ny):
        e = elmore_forward(forest, nx, ny, caps, wire)
        imp2 = 2.0 * e.beta - e.delay**2
        return float((cd * e.delay).sum() + (ci * imp2).sum() + (cl * e.load).sum())

    return objective


class TestElmoreBackward:
    def test_matches_finite_differences(self, setup):
        design, forest, nx, ny, caps, wire, rng = setup
        cd = rng.normal(0, 1, forest.n_nodes)
        ci = rng.normal(0, 0.1, forest.n_nodes)
        cl = np.zeros(forest.n_nodes)
        roots = np.nonzero(forest.is_root)[0]
        cl[roots] = rng.normal(0, 1, len(roots))

        e = elmore_forward(forest, nx, ny, caps, wire)
        gx, gy = elmore_backward(forest, e, wire, cd, ci, cl)
        objective = objective_factory(forest, caps, wire, cd, ci, cl)

        eps = 1e-6
        probes = rng.choice(forest.n_nodes, 25, replace=False)
        for i in probes:
            for axis, grad in ((0, gx), (1, gy)):
                a = (nx.copy(), ny.copy())
                b = (nx.copy(), ny.copy())
                a[axis][i] += eps
                b[axis][i] -= eps
                fd = (objective(*a) - objective(*b)) / (2 * eps)
                assert grad[i] == pytest.approx(fd, rel=1e-4, abs=1e-7)

    def test_delay_only_gradient(self, setup):
        design, forest, nx, ny, caps, wire, rng = setup
        cd = np.zeros(forest.n_nodes)
        sinks = np.nonzero((forest.node_pin >= 0) & ~forest.is_root)[0]
        cd[sinks[:10]] = 1.0
        zeros = np.zeros(forest.n_nodes)
        e = elmore_forward(forest, nx, ny, caps, wire)
        gx, gy = elmore_backward(forest, e, wire, cd, zeros, zeros)
        objective = objective_factory(forest, caps, wire, cd, zeros, zeros)
        eps = 1e-6
        for i in rng.choice(forest.n_nodes, 12, replace=False):
            a = nx.copy()
            b = nx.copy()
            a[i] += eps
            b[i] -= eps
            fd = (objective(a, ny) - objective(b, ny)) / (2 * eps)
            assert gx[i] == pytest.approx(fd, rel=1e-4, abs=1e-8)

    def test_load_only_gradient(self, setup):
        design, forest, nx, ny, caps, wire, rng = setup
        zeros = np.zeros(forest.n_nodes)
        cl = np.zeros(forest.n_nodes)
        roots = np.nonzero(forest.is_root)[0]
        cl[roots] = 1.0
        e = elmore_forward(forest, nx, ny, caps, wire)
        gx, gy = elmore_backward(forest, e, wire, zeros, zeros, cl)
        objective = objective_factory(forest, caps, wire, zeros, zeros, cl)
        eps = 1e-6
        for i in rng.choice(forest.n_nodes, 12, replace=False):
            a = ny.copy()
            b = ny.copy()
            a[i] += eps
            b[i] -= eps
            fd = (objective(nx, a) - objective(nx, b)) / (2 * eps)
            assert gy[i] == pytest.approx(fd, rel=1e-4, abs=1e-8)

    def test_zero_seed_gives_zero_gradient(self, setup):
        design, forest, nx, ny, caps, wire, rng = setup
        zeros = np.zeros(forest.n_nodes)
        e = elmore_forward(forest, nx, ny, caps, wire)
        gx, gy = elmore_backward(forest, e, wire, zeros, zeros, zeros)
        assert np.abs(gx).max() == 0.0
        assert np.abs(gy).max() == 0.0

    def test_gradient_sign_for_stretching_wire(self):
        """Lengthening a 2-pin net increases its sink delay."""
        from repro.route import Forest, RoutingTree
        from repro.netlist import WireModel

        tree = RoutingTree(
            x=np.array([0.0, 10.0]),
            y=np.array([0.0, 0.0]),
            parent=np.array([-1, 0]),
            pins=np.array([0, 1]),
            owner_x=np.array([0, 1]),
            owner_y=np.array([0, 1]),
            root=0,
        )
        forest = Forest([tree], 2)
        wire = WireModel(0.01, 0.2)
        caps = np.array([0.0, 2.0])
        e = elmore_forward(forest, tree.x, tree.y, caps, wire)
        cd = np.array([0.0, 1.0])
        zeros = np.zeros(2)
        gx, gy = elmore_backward(forest, e, wire, cd, zeros, zeros)
        assert gx[1] > 0  # moving the sink right lengthens the wire
        assert gx[0] < 0  # moving the driver right shortens it
