"""Equivalence of the wave-vectorised levelisation with the scalar oracle.

The vectorised Kahn sweep in :mod:`repro.sta.graph` must produce exactly
the same longest-path levels, start-point set and level-sorted arc tables
as the straightforward per-edge implementation it replaced; these tests
re-derive the levels with a scalar reference and compare everything the
timers consume.
"""

import numpy as np
import pytest

from repro.harness import load_design
from repro.netlist import GeneratorSpec, generate_design
from repro.sta import TimingGraph


def reference_levels(graph: TimingGraph) -> np.ndarray:
    """Scalar Kahn longest-path levelisation over the propagation DAG."""
    design = graph.design
    n_pins = design.n_pins
    edges_src = np.concatenate([graph.net_src, graph.c_src])
    edges_dst = np.concatenate([graph.net_sink, graph.c_dst])
    if len(edges_src):
        pairs = np.unique(np.stack([edges_src, edges_dst], axis=1), axis=0)
        edges_src, edges_dst = pairs[:, 0], pairs[:, 1]
    out = [[] for _ in range(n_pins)]
    indegree = np.zeros(n_pins, dtype=np.int64)
    for u, v in zip(edges_src, edges_dst):
        out[u].append(int(v))
        indegree[v] += 1
    level = np.zeros(n_pins, dtype=np.int64)
    frontier = [int(p) for p in np.nonzero(indegree == 0)[0]]
    remaining = indegree.copy()
    visited = 0
    while frontier:
        visited += len(frontier)
        nxt = []
        for u in frontier:
            for v in out[u]:
                level[v] = max(level[v], level[u] + 1)
                remaining[v] -= 1
                if remaining[v] == 0:
                    nxt.append(v)
        frontier = nxt
    assert visited == n_pins
    return level


DESIGNS = [
    GeneratorSpec(name="lvl-small", n_cells=150, depth=6, seed=7),
    GeneratorSpec(name="lvl-deep", n_cells=400, depth=12, seed=19),
    GeneratorSpec(name="lvl-wide", n_cells=500, depth=4, seed=23),
]


@pytest.mark.parametrize("spec", DESIGNS, ids=lambda s: s.name)
def test_generated_designs_match_reference(spec):
    graph = TimingGraph(generate_design(spec))
    ref = reference_levels(graph)
    np.testing.assert_array_equal(graph.level, ref)
    assert graph.n_levels == int(ref.max()) + 1


@pytest.mark.parametrize("name", ["miniblue18", "miniblue4"])
def test_miniblue_designs_match_reference(name):
    graph = TimingGraph(load_design(name))
    ref = reference_levels(graph)

    np.testing.assert_array_equal(graph.level, ref)

    # Start pins: exactly the pins with no incoming propagation edge.
    edges_dst = np.concatenate([graph.net_sink, graph.c_dst])
    indeg = np.bincount(edges_dst, minlength=graph.design.n_pins)
    np.testing.assert_array_equal(
        np.sort(graph.start_pins), np.nonzero(indeg == 0)[0]
    )

    # Arc tables are sorted by sink level with consistent offsets.
    for sinks, arcs in (
        (graph.net_sink, graph.net_arcs),
        (graph.c_dst, graph.cell_arcs),
    ):
        lv = ref[sinks]
        assert (np.diff(lv) >= 0).all()
        counts = np.bincount(lv, minlength=graph.n_levels)
        np.testing.assert_array_equal(np.diff(arcs.offsets), counts)


def test_chain_levels_are_sequential(chain_design):
    """On a pure chain every stage adds net + cell hops monotonically."""
    graph = TimingGraph(chain_design)
    np.testing.assert_array_equal(graph.level, reference_levels(graph))
    assert graph.n_levels > 4


def test_cycle_detection_still_works(library):
    """The vectorised sweep must still reject combinational cycles.

    The frontier here drains (only the dangling clock port is a start
    point) while the two looped inverters stay unreachable, which
    exercises the early-exit wave of the batched Kahn sweep.
    """
    from repro.netlist import DesignBuilder

    b = DesignBuilder("loop", library, die=(0, 0, 40, 20))
    b.add_input("clk", x=0, y=0)
    b.add_cell("u1", "INV_X1")
    b.add_cell("u2", "INV_X1")
    b.add_net("n1", ["u1/Y", "u2/A"])
    b.add_net("n2", ["u2/Y", "u1/A"])
    with pytest.raises(ValueError, match="cycle"):
        TimingGraph(b.build())
