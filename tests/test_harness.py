"""Tests for the experiment harness (suite, runners, tables, curves)."""

import numpy as np
import pytest

from repro.harness import (
    SUITE,
    RunRecord,
    Table3Result,
    average_ratios,
    format_table2,
    format_table3,
    load_design,
    run_mode,
    suite_statistics,
)
from repro.harness.curves import CurveData, format_fig8, run_fig8, to_csv
from repro.netlist import GeneratorSpec, generate_design
from repro.place import PlacerOptions


class TestSuite:
    def test_suite_has_eight_designs(self):
        assert len(SUITE) == 8
        assert [e.superblue for e in SUITE] == [
            "superblue1", "superblue3", "superblue4", "superblue5",
            "superblue7", "superblue10", "superblue16", "superblue18",
        ]

    def test_load_design_deterministic(self):
        d1 = load_design("miniblue18")
        d2 = load_design("miniblue18")
        assert d1.n_cells == d2.n_cells
        np.testing.assert_allclose(d1.cell_x, d2.cell_x)

    def test_relative_ordering_matches_superblue(self):
        stats = {e.name: e for e in SUITE}
        d7 = load_design("miniblue7")
        d18 = load_design("miniblue18")
        assert d7.n_cells > d18.n_cells  # superblue7 >> superblue18

    def test_unknown_design_rejected(self):
        with pytest.raises(KeyError):
            load_design("miniblue99")

    def test_format_table2(self):
        rows = suite_statistics()
        text = format_table2(rows)
        assert "miniblue1" in text and "superblue18" in text
        assert len(text.splitlines()) == len(SUITE) + 2


class TestRunMode:
    @pytest.fixture(scope="class")
    def tiny(self):
        return generate_design(GeneratorSpec(name="tiny", n_cells=120, depth=5, seed=3))

    def test_all_modes_run(self, tiny):
        popts = PlacerOptions(max_iters=120)
        for mode in ("dreamplace", "netweight", "ours"):
            rec = run_mode(tiny, mode, placer_options=popts)
            assert rec.mode == mode
            assert rec.wns < 1e29
            assert rec.hpwl > 0
            assert rec.runtime > 0
            assert len(rec.trace) > 0

    def test_unknown_mode_rejected(self, tiny):
        with pytest.raises(ValueError):
            run_mode(tiny, "quantum")

    def test_trace_sta_adds_timing_series(self, tiny):
        rec = run_mode(
            tiny,
            "dreamplace",
            placer_options=PlacerOptions(max_iters=60),
            with_trace_sta=True,
        )
        assert any("wns" in t for t in rec.trace)

    def test_summary_format(self, tiny):
        rec = run_mode(tiny, "dreamplace", placer_options=PlacerOptions(max_iters=40))
        assert "WNS=" in rec.summary() and "tiny" in rec.summary()


class TestTable3Formatting:
    def _fake_record(self, design, mode, wns, tns, hpwl, runtime):
        return RunRecord(
            design=design, mode=mode, wns=wns, tns=tns, hpwl=hpwl,
            runtime=runtime, iterations=1, stop_reason="overflow",
            x=np.zeros(1), y=np.zeros(1),
        )

    def test_average_ratios(self):
        result = Table3Result()
        result.add(self._fake_record("d1", "ours", -100.0, -1000.0, 50.0, 2.0))
        result.add(self._fake_record("d1", "dreamplace", -200.0, -3000.0, 45.0, 1.0))
        ratios = average_ratios(result)
        assert ratios["dreamplace"]["wns"] == pytest.approx(2.0)
        assert ratios["dreamplace"]["tns"] == pytest.approx(3.0)
        assert ratios["dreamplace"]["hpwl"] == pytest.approx(0.9)
        assert ratios["ours"]["wns"] == pytest.approx(1.0)

    def test_format_contains_all_rows(self):
        result = Table3Result()
        for d in ("d1", "d2"):
            result.add(self._fake_record(d, "ours", -1.0, -2.0, 3.0, 4.0))
            result.add(self._fake_record(d, "dreamplace", -2.0, -4.0, 3.0, 1.0))
        text = format_table3(result)
        assert "d1" in text and "d2" in text and "Avg. Ratio" in text


class TestCurves:
    def test_fig8_on_tiny_design(self, monkeypatch):
        # Use a small custom design in place of miniblue4 for test speed.
        tiny = generate_design(GeneratorSpec(name="tiny8", n_cells=120, depth=5, seed=4))
        import repro.harness.curves as curves_mod

        monkeypatch.setattr(curves_mod, "load_design", lambda name: tiny)
        data = run_fig8("tiny8", max_iters=120)
        assert set(data.series) == {"dreamplace", "ours"}
        for mode in data.series:
            xs, ys = data.panel("hpwl", mode)
            assert len(xs) > 0
            xs, ys = data.panel("wns", mode)
            assert len(xs) > 0
        text = format_fig8(data, step=20)
        assert "final dreamplace" in text and "final ours" in text
        csv = to_csv(data)
        assert csv.splitlines()[0] == "iteration,mode,metric,value"
        assert len(csv.splitlines()) > 10
