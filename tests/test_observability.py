"""Observability surfaces: status/tail/trend CLIs and trace export.

Covers the reader side of the live-observability stack: registry
rendering, torn-line-safe event following with convergence deltas, the
Chrome ``trace_event`` export behind ``--trace-out``, and the
perf-regression ledger's drift gate.
"""

import json
import os

import pytest

from repro.harness.__main__ import main as harness_main
from repro.harness.observe import EventFollower, format_status
from repro.perf import PROFILER, span_tree_to_trace_events, write_chrome_trace
from repro.telemetry.events import MetricsRecorder
from repro.telemetry.history import append_record
from repro.telemetry.registry import Heartbeat, HeartbeatRecord, RunRegistry


def _seed_record(tmp_path, run_id="live_run", **kwargs):
    registry = RunRegistry(str(tmp_path))
    record = HeartbeatRecord(
        run_id=run_id,
        pid=os.getpid(),
        design="midiblue50",
        mode="ours",
        **kwargs,
    )
    return Heartbeat(registry, record, min_interval_s=0.0)


class TestStatus:
    def test_empty_registry_renders_header_only(self, tmp_path, capsys):
        assert harness_main(["status", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "RUN" in out and "(no active runs)" in out

    def test_live_run_row(self, tmp_path, capsys):
        beat = _seed_record(tmp_path)
        beat.update(phase="place", iteration=42)
        assert harness_main(["status", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "live_run" in out
        assert "midiblue50" in out
        assert "place" in out
        assert "live" in out

    def test_json_output_carries_state_and_rate(self, tmp_path, capsys):
        beat = _seed_record(tmp_path)
        beat.update(phase="place", iteration=10)
        beat.record.anchor_ts -= 1.0
        beat.update(iteration=20, force=True)
        assert harness_main(["status", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (entry,) = payload
        assert entry["run_id"] == "live_run"
        assert entry["state"] == "live"
        assert entry["iteration_rate"] > 0

    def test_format_status_stale_threshold(self, tmp_path):
        beat = _seed_record(tmp_path)
        beat.record.ts -= 100.0
        records = [beat.record]
        assert "stale" in format_status(records, stale_after_s=15.0)
        assert "live" in format_status(records, stale_after_s=3600.0)


def _write_stream(path, iterations=3, end=True, torn_tail=False):
    with MetricsRecorder(str(path)) as rec:
        rec.event(
            "run_start", iteration=0, design="miniblue1",
            optimizer="nesterov", seed=0, max_iters=30, resumed=False,
        )
        for it in range(iterations):
            rec.iteration(it, {"hpwl": 1000.0 - 10.0 * it, "overflow": 0.9})
        rec.event("resource", iteration=iterations - 1,
                  rss_bytes=64 << 20, cpu_user_s=1.5, cpu_sys_s=0.2)
        if end:
            rec.event(
                "run_end", iteration=iterations - 1,
                stop_reason="max_iters", iterations=iterations,
                hpwl=1000.0 - 10.0 * (iterations - 1), overflow=0.9,
            )
    if torn_tail:
        with open(path, "a") as handle:
            handle.write('{"ts": 1.0, "kind": "iterat')


class TestTail:
    def test_once_renders_deltas_and_summary(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        _write_stream(events)
        assert harness_main(["tail", str(events), "--once"]) == 0
        out = capsys.readouterr().out
        assert "run_start design=miniblue1" in out
        assert "it 1/30" in out and "(-1.00%)" in out
        assert "resource rss 64.0MB" in out
        assert "run_end stop=max_iters" in out
        assert "-- 6 event(s), 0 torn partial record(s) skipped, run ended" \
            in out

    def test_once_counts_torn_tail_and_reports_in_flight(
        self, tmp_path, capsys
    ):
        events = tmp_path / "events.jsonl"
        _write_stream(events, end=False, torn_tail=True)
        assert harness_main(["tail", str(events), "--once"]) == 0
        out = capsys.readouterr().out
        assert "1 torn partial record(s) skipped" in out
        assert "run in flight" in out

    def test_once_missing_stream_fails(self, tmp_path, capsys):
        code = harness_main(
            ["tail", str(tmp_path), "--run", "nope", "--once"]
        )
        assert code == 1
        assert "no event stream" in capsys.readouterr().out

    def test_run_dir_resolution_and_ambiguity(self, tmp_path, capsys):
        for rid in ("a", "b"):
            os.makedirs(tmp_path / rid)
            _write_stream(tmp_path / rid / "events.jsonl", iterations=1)
        # Two runs without --run is ambiguous.
        with pytest.raises(SystemExit, match="--run"):
            harness_main(["tail", str(tmp_path), "--once"])
        assert harness_main(
            ["tail", str(tmp_path), "--run", "a", "--once"]
        ) == 0
        assert "run ended" in capsys.readouterr().out

    def test_follow_mode_stops_at_run_end(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        _write_stream(events)
        assert harness_main(
            ["tail", str(events), "--timeout", "10"]
        ) == 0
        assert "run_end" in capsys.readouterr().out

    def test_follower_buffers_partial_trailing_line(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        follower = EventFollower(path)
        assert follower.poll() == []  # not created yet
        with open(path, "w") as handle:
            handle.write('{"kind": "iteration", "iteration": 0}\n')
            handle.write('{"kind": "iter')  # writer caught mid-record
        first = follower.poll()
        assert [e["iteration"] for e in first] == [0]
        with open(path, "a") as handle:
            handle.write('ation", "iteration": 1}\n')
        second = follower.poll()
        assert [e["iteration"] for e in second] == [1]
        assert follower.skipped == 0

    def test_follower_counts_unparsable_complete_line(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        with open(path, "w") as handle:
            handle.write("garbage that never parses\n")
            handle.write('{"kind": "iteration", "iteration": 2}\n')
        follower = EventFollower(path)
        events = follower.poll()
        assert [e["iteration"] for e in events] == [2]
        assert follower.skipped == 1


class TestTraceExport:
    @pytest.fixture()
    def span_tree(self, small_design):
        from repro.harness.runners import run_mode
        from repro.place.placer import PlacerOptions

        record = run_mode(
            small_design,
            "ours",
            placer_options=PlacerOptions(max_iters=4, min_iters=1, seed=0),
            collect_spans=True,
        )
        assert record.span_tree is not None
        return record.span_tree

    def test_span_tree_to_trace_events_shape(self, span_tree):
        events = span_tree_to_trace_events(span_tree)
        assert events, "a placer run must produce spans"
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
            assert isinstance(event["name"], str)
        # Children nest inside their parent's interval.
        roots = [e for e in events if e["ts"] == 0.0]
        assert roots

    def test_write_chrome_trace_is_loadable(self, span_tree, tmp_path):
        out = str(tmp_path / "trace.json")
        write_chrome_trace(out, [("small/ours", span_tree)])
        with open(out) as handle:
            trace = json.load(handle)
        assert trace["displayTimeUnit"] == "ms"
        names = {e["ph"] for e in trace["traceEvents"]}
        assert names == {"M", "X"}
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert meta[0]["name"] == "thread_name"
        assert meta[0]["args"]["name"] == "small/ours"

    def test_collect_spans_leaves_profiler_state_alone(self, span_tree):
        # collect_spans without a session must restore the shared
        # profiler's enabled flag (the fixture ran with it off).
        assert not PROFILER.enabled


class TestTrend:
    def _seed(self, history_dir, values, bench="rsmt_forest"):
        for i, value in enumerate(values):
            append_record(
                bench,
                {"speedup": value},
                gates={"speedup": "higher"},
                history_dir=str(history_dir),
                git_rev=f"rev{i}",
            )

    def test_steady_history_passes(self, tmp_path, capsys):
        self._seed(tmp_path, [3.1, 3.2, 3.0, 3.15])
        assert harness_main(["trend", "--history", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "# trend: rsmt_forest" in out
        assert "ok: latest within" in out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        self._seed(tmp_path, [3.1, 3.2, 3.0, 3.15, 2.0])
        assert harness_main(["trend", "--history", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "DRIFT speedup" in out

    def test_rtol_widens_the_gate(self, tmp_path):
        self._seed(tmp_path, [3.0, 3.0, 2.5])
        assert harness_main(
            ["trend", "--history", str(tmp_path), "--rtol", "0.3"]
        ) == 0
        assert harness_main(
            ["trend", "--history", str(tmp_path), "--rtol", "0.05"]
        ) == 1

    def test_named_bench_selection_and_missing(self, tmp_path, capsys):
        self._seed(tmp_path, [1.0, 1.0], bench="placer_suite")
        assert harness_main(
            ["trend", "placer_suite", "--history", str(tmp_path)]
        ) == 0
        capsys.readouterr()
        assert harness_main(
            ["trend", "absent_bench", "--history", str(tmp_path)]
        ) == 1
        assert "no history for bench 'absent_bench'" in \
            capsys.readouterr().out

    def test_empty_history_reports_nothing_to_check(self, tmp_path, capsys):
        assert harness_main(["trend", "--history", str(tmp_path)]) == 0
        assert "no benchmark history" in capsys.readouterr().out
