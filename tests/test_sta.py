"""Integration tests for the golden STA engine."""

import numpy as np
import pytest

from repro.netlist import FALL, RISE, make_chain_design
from repro.sta import StaticTimingAnalyzer, TimingGraph, run_sta


class TestTimingGraph:
    def test_chain_levels(self, chain_design):
        graph = TimingGraph(chain_design)
        # PI -> (A, Y) x4 -> D: one net level + one cell level per stage.
        assert graph.n_levels >= 2 * 4 + 1
        assert graph.n_endpoints == 2  # ff0/D setup + out0

    def test_start_points_include_pi_and_clock(self, chain_design):
        d = chain_design
        graph = TimingGraph(d)
        start_names = {d.pin_name[p] for p in graph.start_pins}
        assert "in0/O" in start_names
        assert "ff0/CK" in start_names

    def test_clock_net_not_propagated(self, chain_design):
        d = chain_design
        graph = TimingGraph(d)
        ck_pin = d.pin_name.index("ff0/CK")
        assert ck_pin not in graph.net_sink

    def test_non_unate_arcs_expand_to_four_contributions(self, library):
        from repro.netlist import DesignBuilder

        b2 = DesignBuilder("t2", library, die=(0, 0, 40, 20))
        b2.add_input("clk", x=0, y=0)
        b2.add_input("a", x=0, y=10)
        b2.add_input("b", x=0, y=12)
        b2.add_output("z", x=40, y=10)
        b2.add_cell("x1", "XOR2_X1")
        b2.add_net("na", ["a", "x1/A"])
        b2.add_net("nb", ["b", "x1/B"])
        b2.add_net("nz", ["x1/Y", "z"])
        d = b2.build()
        graph = TimingGraph(d)
        y_pin = d.pin_name.index("x1/Y")
        contribs = graph.fanin_contributions(y_pin)
        assert len(contribs) == 8  # 2 inputs x 2 t_in x 2 t_out (non-unate)

    def test_describe(self, chain_design):
        text = TimingGraph(chain_design).describe()
        assert "levels=" in text and "endpoints=" in text

    def test_combinational_cycle_detected(self, library):
        from repro.netlist import DesignBuilder

        b = DesignBuilder("loop", library, die=(0, 0, 40, 20))
        b.add_input("clk", x=0, y=0)
        b.add_cell("u1", "INV_X1")
        b.add_cell("u2", "INV_X1")
        b.add_net("n1", ["u1/Y", "u2/A"])
        b.add_net("n2", ["u2/Y", "u1/A"])
        d = b.build()
        with pytest.raises(ValueError, match="cycle"):
            TimingGraph(d)


class TestChainTiming:
    def test_arrival_monotone_along_chain(self, chain_design):
        d = chain_design
        res = run_sta(d)
        order = ["in0/O", "g0/Y", "g1/Y", "g2/Y", "g3/Y", "ff0/D"]
        ats = [res.at[d.pin_name.index(p)].max() for p in order]
        assert all(a < b for a, b in zip(ats, ats[1:]))

    def test_slack_equals_rat_minus_at(self, chain_design):
        res = run_sta(chain_design)
        np.testing.assert_allclose(res.slack, res.rat - res.at)

    def test_wns_is_min_endpoint_slack(self, chain_design):
        res = run_sta(chain_design)
        assert res.wns_setup == pytest.approx(res.endpoint_slack.min())

    def test_tns_sums_only_violations(self, chain_design):
        res = run_sta(chain_design)
        expected = float(np.minimum(res.endpoint_slack, 0.0).sum())
        assert res.tns_setup == pytest.approx(expected)

    def test_loose_clock_no_violation(self):
        d = make_chain_design(3, clock_period=100000.0)
        res = run_sta(d)
        assert res.wns_setup > 0
        assert res.tns_setup == 0.0

    def test_tight_clock_violates(self):
        d = make_chain_design(6, clock_period=10.0)
        res = run_sta(d)
        assert res.wns_setup < 0
        assert res.tns_setup < 0

    def test_longer_chain_has_larger_delay(self):
        short = run_sta(make_chain_design(2))
        long = run_sta(make_chain_design(8, die=(0, 0, 120, 20)))
        d_short = short.at[short.graph.endpoint_pins[0]].max()
        d_long = long.at[long.graph.endpoint_pins[0]].max()
        assert d_long > d_short

    def test_stretching_die_increases_delay(self):
        near = run_sta(make_chain_design(4, die=(0, 0, 30, 20)))
        far = run_sta(make_chain_design(4, die=(0, 0, 300, 20)))
        assert far.wns_setup < near.wns_setup


class TestHold:
    def test_hold_computed_when_requested(self, chain_design):
        res = run_sta(chain_design, compute_hold=True)
        assert res.hold_slack is not None
        assert len(res.hold_slack) == 1  # one FF
        assert res.at_early is not None

    def test_early_at_below_late_at(self, small_design):
        res = run_sta(small_design, compute_hold=True)
        reached = (res.at > -1e29) & (res.at_early < 1e29)
        assert (res.at_early[reached] <= res.at[reached] + 1e-9).all()

    def test_chain_hold_positive(self, chain_design):
        # Single-cycle chain with real gate delays easily meets hold.
        res = run_sta(chain_design, compute_hold=True)
        assert res.wns_hold > 0


class TestGeneratedDesign:
    def test_all_endpoints_reached(self, small_design):
        res = run_sta(small_design)
        assert (np.abs(res.endpoint_slack) < 1e29).all()

    def test_net_worst_slack_shape(self, small_design):
        res = run_sta(small_design)
        ns = res.net_worst_slack()
        assert len(ns) == small_design.n_nets
        # Timing nets have finite slack, clock net reports +inf.
        clock_net = int(np.nonzero(small_design.net_is_clock)[0][0])
        assert ns[clock_net] > 1e29
        assert ns[ns < 1e29].min() == pytest.approx(res.slack.min(), abs=1.0)

    def test_moving_cells_changes_timing(self, small_design, spread_positions):
        x, y = spread_positions
        res_center = run_sta(small_design)
        res_spread = run_sta(small_design, x, y)
        assert res_center.wns_setup != pytest.approx(res_spread.wns_setup)

    def test_reuse_forest_matches_fresh_route(self, small_design, spread_positions):
        x, y = spread_positions
        sta = StaticTimingAnalyzer(small_design)
        res1 = sta.run(x, y)
        res2 = sta.run(x, y, forest=res1.forest)
        assert res1.wns_setup == pytest.approx(res2.wns_setup)
        assert res1.tns_setup == pytest.approx(res2.tns_setup)
