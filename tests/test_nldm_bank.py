"""Unit tests for the batched LutBank against the scalar LUT reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.lut import LUT
from repro.sta.nldm import LutBank


def make_random_lut(rng, nx, ny):
    x = np.sort(rng.uniform(0, 100, nx))
    while len(np.unique(x)) < nx:
        x = np.sort(rng.uniform(0, 100, nx))
    y = np.sort(rng.uniform(0, 100, ny))
    while len(np.unique(y)) < ny:
        y = np.sort(rng.uniform(0, 100, ny))
    return LUT(x, y, rng.uniform(-5, 5, (nx, ny)))


class TestRegistration:
    def test_dedup_by_identity(self):
        bank = LutBank()
        lut = LUT.constant(1.0)
        assert bank.register(lut) == bank.register(lut)
        assert len(bank) == 1

    def test_distinct_objects_get_distinct_ids(self):
        bank = LutBank()
        assert bank.register(LUT.constant(1.0)) != bank.register(LUT.constant(1.0))

    def test_register_after_finalize_rejected(self):
        bank = LutBank()
        bank.register(LUT.constant(1.0))
        bank.finalize()
        with pytest.raises(RuntimeError):
            bank.register(LUT.constant(2.0))

    def test_empty_bank_finalizes(self):
        bank = LutBank()
        bank.finalize()
        assert len(bank) == 0


class TestLookupAgainstScalar:
    def test_mixed_sizes_match_scalar(self):
        rng = np.random.default_rng(1)
        bank = LutBank()
        luts = [
            make_random_lut(rng, 2, 2),
            make_random_lut(rng, 7, 7),
            make_random_lut(rng, 4, 6),
            LUT.constant(3.25),
            LUT(np.array([0.0]), np.array([0.0, 5.0]), np.array([[1.0, 2.0]])),
        ]
        ids = [bank.register(lut) for lut in luts]
        bank.finalize()
        queries_x = rng.uniform(-10, 120, 200)
        queries_y = rng.uniform(-10, 120, 200)
        which = rng.integers(0, len(luts), 200)
        v, dx, dy = bank.lookup_with_grad(
            np.array(ids)[which], queries_x, queries_y
        )
        for i in range(200):
            lut = luts[which[i]]
            ref_v, ref_dx, ref_dy = lut.lookup_with_grad(
                queries_x[i], queries_y[i]
            )
            assert v[i] == pytest.approx(float(ref_v), rel=1e-12, abs=1e-12)
            assert dx[i] == pytest.approx(float(ref_dx), rel=1e-12, abs=1e-12)
            assert dy[i] == pytest.approx(float(ref_dy), rel=1e-12, abs=1e-12)

    def test_broadcasting_scalar_ids(self):
        rng = np.random.default_rng(2)
        bank = LutBank()
        lut = make_random_lut(rng, 3, 3)
        lid = bank.register(lut)
        bank.finalize()
        xs = rng.uniform(0, 100, 10)
        out = bank.lookup(lid, xs, 50.0)
        assert out.shape == (10,)

    def test_shape_preserved(self):
        bank = LutBank()
        lid = bank.register(LUT.constant(2.0))
        bank.finalize()
        out = bank.lookup(np.full((3, 4), lid), np.zeros((3, 4)), np.zeros((3, 4)))
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out, 2.0)


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    qx=st.floats(min_value=-50, max_value=150),
    qy=st.floats(min_value=-50, max_value=150),
)
def test_bank_equals_scalar_lut_property(seed, qx, qy):
    rng = np.random.default_rng(seed)
    lut = make_random_lut(rng, int(rng.integers(2, 8)), int(rng.integers(2, 8)))
    bank = LutBank()
    lid = bank.register(lut)
    bank.finalize()
    v = bank.lookup(np.array([lid]), np.array([qx]), np.array([qy]))[0]
    assert v == pytest.approx(float(lut.lookup(qx, qy)), rel=1e-10, abs=1e-10)
