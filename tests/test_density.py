"""Unit tests for the electrostatic density model."""

import numpy as np
import pytest

from repro.place import DensityModel


class TestSplatting:
    def test_total_mass_conserved(self, small_design, spread_positions):
        x, y = spread_positions
        model = DensityModel(small_design, n_bins=16)
        rho, _ = model._splat(x, y)
        assert rho.sum() == pytest.approx(model.movable_area_total, rel=1e-9)

    def test_point_in_bin_center(self, small_design):
        d = small_design
        model = DensityModel(d, n_bins=16)
        result = model.evaluate(d.cell_x, d.cell_y)
        assert result.density.shape == (16, 16)
        assert result.density.min() >= 0


class TestPoisson:
    def test_potential_satisfies_poisson_in_interior(self, small_design):
        """lap(phi) ~ -(rho - mean) away from the boundary."""
        d = small_design
        rng = np.random.default_rng(1)
        model = DensityModel(d, n_bins=32)
        x = rng.uniform(d.die[0], d.die[2], d.n_cells)
        y = rng.uniform(d.die[1], d.die[3], d.n_cells)
        rho, _ = model._splat(x, y)
        phi = model._solve_poisson(rho)
        source = rho / model.bin_area
        source = source - source.mean()
        lap = (
            (np.roll(phi, 1, 0) - 2 * phi + np.roll(phi, -1, 0)) / model.hx**2
            + (np.roll(phi, 1, 1) - 2 * phi + np.roll(phi, -1, 1)) / model.hy**2
        )
        interior = (slice(2, -2), slice(2, -2))
        resid = lap[interior] + source[interior]
        scale = np.abs(source).max() + 1e-12
        assert np.abs(resid).max() / scale < 0.05

    def test_uniform_density_zero_field(self, small_design):
        d = small_design
        model = DensityModel(d, n_bins=16)
        rho = np.full((16, 16), 3.0)
        phi = model._solve_poisson(rho)
        assert np.abs(phi).max() < 1e-9


class TestGradients:
    def test_force_points_away_from_cluster(self, small_design):
        d = small_design
        model = DensityModel(d, n_bins=16)
        xl, yl, xh, yh = d.die
        cx, cy = 0.5 * (xl + xh), 0.5 * (yl + yh)
        x = np.full(d.n_cells, cx)
        y = np.full(d.n_cells, cy)
        # One probe cell to the right of the cluster.
        movable = np.nonzero(~d.cell_fixed)[0]
        probe = movable[0]
        x[probe] = cx + 0.3 * (xh - cx)
        res = model.evaluate(x, y)
        # Energy gradient on the probe is negative along +x (moving right,
        # away from the cluster, reduces the energy).
        assert res.grad_x[probe] < 0

    def test_fixed_cells_zero_gradient(self, small_design, spread_positions):
        x, y = spread_positions
        model = DensityModel(small_design, n_bins=16)
        res = model.evaluate(x, y)
        fixed = small_design.cell_fixed
        assert np.abs(res.grad_x[fixed]).max() == 0.0
        assert np.abs(res.grad_y[fixed]).max() == 0.0


class TestOverflow:
    def test_clustered_overflow_near_one(self, small_design):
        d = small_design
        model = DensityModel(d, n_bins=16)
        xl, yl, xh, yh = d.die
        x = np.full(d.n_cells, 0.5 * (xl + xh))
        y = np.full(d.n_cells, 0.5 * (yl + yh))
        res = model.evaluate(x, y)
        assert res.overflow > 0.8

    def test_uniform_spread_low_overflow(self, small_design):
        d = small_design
        rng = np.random.default_rng(3)
        model = DensityModel(d, n_bins=16)
        xl, yl, xh, yh = d.die
        # A regular grid of positions approximates uniform density at the
        # target utilisation (0.7 < 1), so overflow should be small.
        n = d.n_cells
        side = int(np.ceil(np.sqrt(n)))
        gx, gy = np.meshgrid(np.linspace(xl + 1, xh - 1, side),
                             np.linspace(yl + 1, yh - 1, side))
        x = gx.ravel()[:n]
        y = gy.ravel()[:n]
        res = model.evaluate(x, y)
        assert res.overflow < 0.25

    def test_overflow_decreases_with_spreading(self, small_design):
        d = small_design
        rng = np.random.default_rng(4)
        model = DensityModel(d, n_bins=16)
        xl, yl, xh, yh = d.die
        cx, cy = 0.5 * (xl + xh), 0.5 * (yl + yh)
        tight = model.evaluate(
            cx + rng.normal(0, 1, d.n_cells), cy + rng.normal(0, 1, d.n_cells)
        )
        loose = model.evaluate(
            np.clip(cx + rng.normal(0, 20, d.n_cells), xl, xh),
            np.clip(cy + rng.normal(0, 20, d.n_cells), yl, yh),
        )
        assert loose.overflow < tight.overflow


class TestAutoBins:
    def test_auto_bins_scale_with_cell_size(self, small_design, medium_design):
        from repro.place.placer import _auto_bins

        nb_small = _auto_bins(small_design)
        nb_medium = _auto_bins(medium_design)
        assert nb_small >= 8
        assert nb_medium >= nb_small  # larger die, same cells -> more bins
