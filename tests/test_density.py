"""Unit tests for the electrostatic density model."""

import numpy as np
import pytest

from repro.netlist import DesignBuilder, default_library
from repro.place import DensityModel


class TestSplatting:
    def test_total_mass_conserved(self, small_design, spread_positions):
        x, y = spread_positions
        model = DensityModel(small_design, n_bins=16)
        rho, _ = model._splat(x, y)
        assert rho.sum() == pytest.approx(model.movable_area_total, rel=1e-9)

    def test_point_in_bin_center(self, small_design):
        d = small_design
        model = DensityModel(d, n_bins=16)
        result = model.evaluate(d.cell_x, d.cell_y)
        assert result.density.shape == (16, 16)
        assert result.density.min() >= 0


class TestPoisson:
    def test_potential_satisfies_poisson_in_interior(self, small_design):
        """lap(phi) ~ -(rho - mean) away from the boundary."""
        d = small_design
        rng = np.random.default_rng(1)
        model = DensityModel(d, n_bins=32)
        x = rng.uniform(d.die[0], d.die[2], d.n_cells)
        y = rng.uniform(d.die[1], d.die[3], d.n_cells)
        rho, _ = model._splat(x, y)
        phi = model._solve_poisson(rho)
        source = rho / model.bin_area
        source = source - source.mean()
        lap = (
            (np.roll(phi, 1, 0) - 2 * phi + np.roll(phi, -1, 0)) / model.hx**2
            + (np.roll(phi, 1, 1) - 2 * phi + np.roll(phi, -1, 1)) / model.hy**2
        )
        interior = (slice(2, -2), slice(2, -2))
        resid = lap[interior] + source[interior]
        scale = np.abs(source).max() + 1e-12
        assert np.abs(resid).max() / scale < 0.05

    def test_uniform_density_zero_field(self, small_design):
        d = small_design
        model = DensityModel(d, n_bins=16)
        rho = np.full((16, 16), 3.0)
        phi = model._solve_poisson(rho)
        assert np.abs(phi).max() < 1e-9


class TestGradients:
    def test_force_points_away_from_cluster(self, small_design):
        d = small_design
        model = DensityModel(d, n_bins=16)
        xl, yl, xh, yh = d.die
        cx, cy = 0.5 * (xl + xh), 0.5 * (yl + yh)
        x = np.full(d.n_cells, cx)
        y = np.full(d.n_cells, cy)
        # One probe cell to the right of the cluster.
        movable = np.nonzero(~d.cell_fixed)[0]
        probe = movable[0]
        x[probe] = cx + 0.3 * (xh - cx)
        res = model.evaluate(x, y)
        # Energy gradient on the probe is negative along +x (moving right,
        # away from the cluster, reduces the energy).
        assert res.grad_x[probe] < 0

    def test_fixed_cells_zero_gradient(self, small_design, spread_positions):
        x, y = spread_positions
        model = DensityModel(small_design, n_bins=16)
        res = model.evaluate(x, y)
        fixed = small_design.cell_fixed
        assert np.abs(res.grad_x[fixed]).max() == 0.0
        assert np.abs(res.grad_y[fixed]).max() == 0.0


class TestOverflow:
    def test_clustered_overflow_near_one(self, small_design):
        d = small_design
        model = DensityModel(d, n_bins=16)
        xl, yl, xh, yh = d.die
        x = np.full(d.n_cells, 0.5 * (xl + xh))
        y = np.full(d.n_cells, 0.5 * (yl + yh))
        res = model.evaluate(x, y)
        assert res.overflow > 0.8

    def test_uniform_spread_low_overflow(self, small_design):
        d = small_design
        rng = np.random.default_rng(3)
        model = DensityModel(d, n_bins=16)
        xl, yl, xh, yh = d.die
        # A regular grid of positions approximates uniform density at the
        # target utilisation (0.7 < 1), so overflow should be small.
        n = d.n_cells
        side = int(np.ceil(np.sqrt(n)))
        gx, gy = np.meshgrid(np.linspace(xl + 1, xh - 1, side),
                             np.linspace(yl + 1, yh - 1, side))
        x = gx.ravel()[:n]
        y = gy.ravel()[:n]
        res = model.evaluate(x, y)
        assert res.overflow < 0.25

    def test_overflow_decreases_with_spreading(self, small_design):
        d = small_design
        rng = np.random.default_rng(4)
        model = DensityModel(d, n_bins=16)
        xl, yl, xh, yh = d.die
        cx, cy = 0.5 * (xl + xh), 0.5 * (yl + yh)
        tight = model.evaluate(
            cx + rng.normal(0, 1, d.n_cells), cy + rng.normal(0, 1, d.n_cells)
        )
        loose = model.evaluate(
            np.clip(cx + rng.normal(0, 20, d.n_cells), xl, xh),
            np.clip(cy + rng.normal(0, 20, d.n_cells), yl, yh),
        )
        assert loose.overflow < tight.overflow


def _macro_design(extra_movable=True):
    """A 5x5 block of fixed DFFs (a macro stand-in) plus optional probes."""
    builder = DesignBuilder(
        "blockage", default_library(), die=(0.0, 0.0, 32.0, 32.0)
    )
    for i in range(5):
        for j in range(5):
            builder.add_cell(
                f"m{i}_{j}", "DFF_X1",
                x=7.0 + 0.8 * i, y=14.0 + 0.8 * j, fixed=True,
            )
    if extra_movable:
        builder.add_cell("right", "INV_X1", x=11.0, y=16.0)
        builder.add_cell("left", "INV_X1", x=5.0, y=16.0)
    return builder.build()


class TestFixedBlockage:
    def test_fixed_area_deposited_once_at_construction(self):
        d = _macro_design()
        model = DensityModel(d, n_bins=16)
        fixed_area = float(
            (d.cell_w * d.cell_h)[d.cell_fixed].sum()
        )
        assert model._fixed_rho is not None
        assert model._fixed_rho.sum() == pytest.approx(fixed_area, rel=1e-12)

    def test_blockage_repels_movable_cells(self):
        """Probes on either side of the macro are pushed away from it."""
        d = _macro_design()
        model = DensityModel(d, n_bins=16)
        res = model.evaluate(d.cell_x, d.cell_y)
        right = list(d.cell_name).index("right")
        left = list(d.cell_name).index("left")
        # Energy decreases moving the right probe further right (+x) and
        # the left probe further left (-x): d(energy)/dx < 0 and > 0.
        assert res.grad_x[right] < 0
        assert res.grad_x[left] > 0

    def test_blockage_raises_density_under_macro(self):
        d = _macro_design(extra_movable=False)
        # All-fixed: density map still shows the blockage.
        model = DensityModel(d, n_bins=16)
        res = model.evaluate(d.cell_x, d.cell_y)
        assert res.density.max() > 0.0

    def test_zero_area_ports_keep_fixed_rho_disabled(self, small_design):
        """Generated designs have only zero-area fixed ports: no blockage
        map is allocated and the historical density is bit-identical."""
        model = DensityModel(small_design, n_bins=16)
        assert model._fixed_rho is None


class TestAllFixedEarlyOut:
    def test_all_fixed_design_returns_exact_zeros(self):
        d = _macro_design(extra_movable=False)
        assert not (~d.cell_fixed).any()
        for solver in ("scipy", "planned"):
            model = DensityModel(d, n_bins=16, solver=solver)
            res = model.evaluate(d.cell_x, d.cell_y)
            assert res.energy == 0.0
            assert res.overflow == 0.0
            assert np.abs(res.grad_x).max() == 0.0
            assert np.abs(res.grad_y).max() == 0.0
            assert res.potential is None


class TestSolverOptions:
    def test_unknown_solver_rejected(self, small_design):
        with pytest.raises(ValueError, match="unknown density solver"):
            DensityModel(small_design, n_bins=16, solver="fftw")

    def test_unknown_precision_rejected(self, small_design):
        with pytest.raises(ValueError, match="unknown density precision"):
            DensityModel(small_design, n_bins=16, precision="fp16")

    def test_fp32_requires_planned_solver(self, small_design):
        with pytest.raises(ValueError, match="requires solver='planned'"):
            DensityModel(small_design, n_bins=16, solver="scipy",
                         precision="fp32")

    def test_fp32_gradients_are_float64_at_the_boundary(
        self, small_design, spread_positions
    ):
        x, y = spread_positions
        model = DensityModel(small_design, n_bins=16, solver="planned",
                             precision="fp32")
        res = model.evaluate(x, y)
        assert res.grad_x.dtype == np.float64
        assert res.grad_y.dtype == np.float64


class TestSolverEquivalence:
    """fp64 planned vs scipy, including an odd bin count.

    The splat is shared (identical rho, hence identical overflow), the
    energy agrees to machine precision via Parseval, and the gradients
    differ only by the spectral-vs-central-difference field (a few
    percent on these maps; O(1) if an axis or scale were wrong).
    """

    @pytest.mark.parametrize("n_bins", [17, 64, 128])
    def test_planned_matches_scipy_fp64(
        self, small_design, spread_positions, n_bins
    ):
        x, y = spread_positions
        ref = DensityModel(small_design, n_bins=n_bins).evaluate(x, y)
        fast = DensityModel(
            small_design, n_bins=n_bins, solver="planned"
        ).evaluate(x, y)
        assert fast.overflow == ref.overflow
        assert fast.energy == pytest.approx(ref.energy, rel=1e-12)
        np.testing.assert_allclose(fast.density, ref.density, rtol=1e-12)
        for g_ref, g_fast in ((ref.grad_x, fast.grad_x),
                              (ref.grad_y, fast.grad_y)):
            rel = np.linalg.norm(g_fast - g_ref) / np.linalg.norm(g_ref)
            assert rel < 0.15

    @pytest.mark.parametrize("n_bins", [17, 64])
    def test_fp32_tracks_fp64_planned(
        self, small_design, spread_positions, n_bins
    ):
        x, y = spread_positions
        ref = DensityModel(
            small_design, n_bins=n_bins, solver="planned"
        ).evaluate(x, y)
        fp32 = DensityModel(
            small_design, n_bins=n_bins, solver="planned", precision="fp32"
        ).evaluate(x, y)
        assert fp32.overflow == ref.overflow  # splat stays fp64
        assert fp32.energy == pytest.approx(ref.energy, rel=1e-5)
        for g_ref, g_fp32 in ((ref.grad_x, fp32.grad_x),
                              (ref.grad_y, fp32.grad_y)):
            rel = np.linalg.norm(g_fp32 - g_ref) / np.linalg.norm(g_ref)
            assert rel < 1e-5

    def test_keep_potential_materialises_grid(
        self, small_design, spread_positions
    ):
        x, y = spread_positions
        fast = DensityModel(
            small_design, n_bins=16, solver="planned", keep_potential=True
        ).evaluate(x, y)
        ref = DensityModel(small_design, n_bins=16).evaluate(x, y)
        assert fast.potential is not None
        np.testing.assert_allclose(
            fast.potential, ref.potential, rtol=1e-9, atol=1e-12
        )

    def test_planned_skips_potential_by_default(
        self, small_design, spread_positions
    ):
        x, y = spread_positions
        fast = DensityModel(
            small_design, n_bins=16, solver="planned"
        ).evaluate(x, y)
        assert fast.potential is None


class TestFiniteDifferenceGradcheck:
    """Central-difference check of d(energy)/dx for both solvers.

    The analytic gradient interpolates the field at the cell center
    while the FD quotient differentiates through the splat weights, so
    they agree only to the bilinear-interpolation error (~0.2 rel L2 on
    a 16-bin grid) - but direction and scale must match; a lost 1/h or
    swapped axis fails by an order of magnitude.
    """

    @pytest.mark.parametrize("solver", ["scipy", "planned"])
    def test_energy_gradient_matches_fd(
        self, small_design, spread_positions, solver
    ):
        d = small_design
        x, y = spread_positions
        model = DensityModel(d, n_bins=16, solver=solver)
        res = model.evaluate(x, y)
        probes = np.nonzero(~d.cell_fixed)[0][:24]
        eps = 1e-5 * model.hx
        fd = np.empty(len(probes))
        for t, i in enumerate(probes):
            xp_ = x.copy()
            xm_ = x.copy()
            xp_[i] += eps
            xm_[i] -= eps
            fd[t] = (
                model.evaluate(xp_, y).energy - model.evaluate(xm_, y).energy
            ) / (2.0 * eps)
        grad = np.asarray(res.grad_x[probes])
        rel = np.linalg.norm(fd - grad) / np.linalg.norm(fd)
        assert rel < 0.3
        assert np.corrcoef(fd, grad)[0, 1] > 0.95


class TestAutoBins:
    def test_auto_bins_scale_with_cell_size(self, small_design, medium_design):
        from repro.place.placer import _auto_bins

        nb_small = _auto_bins(small_design)
        nb_medium = _auto_bins(medium_design)
        assert nb_small >= 8
        assert nb_medium >= nb_small  # larger die, same cells -> more bins
