"""Dirty-net incremental forest rebuilds (TimingObjective + Forest.splice).

The policy's contract: between full RSMT rebuilds, only nets whose pins
drifted past the threshold are re-routed and spliced into the cached
forest - and the spliced forest is *exactly* the forest a fresh build
from each net's build-time pin coordinates would produce, so Elmore
delays, telemetry counters, and checkpoint/resume schedules all stay
deterministic.
"""

import glob
import json

import numpy as np
import pytest

from repro.core.objective import TimingObjective, TimingObjectiveOptions
from repro.core.timing_placer import TimingDrivenPlacer, TimingPlacerOptions
from repro.place.placer import PlacerOptions
from repro.route.rsmt import build_forest, build_forest_from_pins
from repro.sta.elmore import elmore_forward, node_caps
from repro.telemetry.events import MetricsRecorder, recording


def _options(**kw):
    defaults = dict(start_iteration=0, rsmt_period=10)
    defaults.update(kw)
    return TimingObjectiveOptions(**defaults)


def _forests_equal(a, b) -> bool:
    for attr in (
        "parent",
        "node_net",
        "node_pin",
        "owner_x_pin",
        "owner_y_pin",
        "depth",
        "node_offset",
        "is_root",
    ):
        if not np.array_equal(getattr(a, attr), getattr(b, attr)):
            return False
    return True


def _elmore_delays(design, forest, x, y):
    px, py = design.pin_positions(x, y)
    nx, ny = forest.node_coords(px, py)
    caps = node_caps(forest, design.pin_cap)
    return elmore_forward(forest, nx, ny, caps, design.library.wire).delay


def _moved(design, rng, x, y, frac=0.05, dist=30.0):
    idx = rng.choice(
        design.n_cells, size=max(int(design.n_cells * frac), 1), replace=False
    )
    x2, y2 = x.copy(), y.copy()
    x2[idx] += rng.uniform(dist / 2, dist, len(idx))
    y2[idx] -= rng.uniform(dist / 2, dist, len(idx))
    return x2, y2


class TestSplicePolicy:
    def test_clean_positions_do_not_rebuild(self, small_design):
        obj = TimingObjective(small_design, _options(rsmt_dirty_threshold=1.0))
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 120, small_design.n_cells)
        y = rng.uniform(0, 120, small_design.n_cells)
        obj.forest_for(x, y, 0)
        obj.forest_for(x, y, 1)  # identical positions: nothing dirty
        assert obj.n_rsmt_calls == 1
        assert obj.n_dirty_nets == 0
        assert obj.n_rsmt_reuses == 1

    def test_splice_equals_snapshot_rebuild(self, small_design):
        """The spliced forest == a fresh build from per-pin snapshots."""
        obj = TimingObjective(small_design, _options(rsmt_dirty_threshold=1.0))
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 120, small_design.n_cells)
        y = rng.uniform(0, 120, small_design.n_cells)
        obj.forest_for(x, y, 0)
        x2, y2 = _moved(small_design, rng, x, y)
        forest = obj.forest_for(x2, y2, 1)
        assert obj.n_dirty_nets > 0
        ref = build_forest_from_pins(
            small_design, obj._built_px, obj._built_py
        )
        assert _forests_equal(forest, ref)

    def test_threshold_zero_splice_matches_full_rebuild_elmore(
        self, small_design
    ):
        """threshold=0 + full_frac>1 forces every moved net through the
        splice path; the result must match a forced full rebuild at the
        current coordinates, down to identical Elmore delays."""
        obj = TimingObjective(
            small_design,
            _options(rsmt_dirty_threshold=0.0, rsmt_dirty_full_frac=2.0),
        )
        rng = np.random.default_rng(3)
        x = rng.uniform(0, 120, small_design.n_cells)
        y = rng.uniform(0, 120, small_design.n_cells)
        obj.forest_for(x, y, 0)
        x2 = x + rng.uniform(0.5, 4.0, small_design.n_cells)
        y2 = y - rng.uniform(0.5, 4.0, small_design.n_cells)
        spliced = obj.forest_for(x2, y2, 1)
        full = build_forest(small_design, x2, y2)
        assert _forests_equal(spliced, full)
        d_spliced = _elmore_delays(small_design, spliced, x2, y2)
        d_full = _elmore_delays(small_design, full, x2, y2)
        np.testing.assert_array_equal(d_spliced, d_full)

    def test_full_rebuild_fallback_when_most_nets_dirty(self, small_design):
        obj = TimingObjective(
            small_design,
            _options(rsmt_dirty_threshold=0.0, rsmt_dirty_full_frac=0.25),
        )
        rng = np.random.default_rng(4)
        x = rng.uniform(0, 120, small_design.n_cells)
        y = rng.uniform(0, 120, small_design.n_cells)
        obj.forest_for(x, y, 0)
        assert obj.n_rsmt_calls == 1
        # Move everything: the dirty fraction exceeds 25% and the policy
        # promotes to a full rebuild (restarting the period counter).
        obj.forest_for(x + 5.0, y + 5.0, 1)
        assert obj.n_rsmt_calls == 2
        assert obj._iters_since_rsmt == 1

    def test_disabled_by_default_keeps_legacy_schedule(self, small_design):
        obj = TimingObjective(small_design, _options())
        rng = np.random.default_rng(5)
        x = rng.uniform(0, 120, small_design.n_cells)
        y = rng.uniform(0, 120, small_design.n_cells)
        obj.forest_for(x, y, 0)
        for i in range(1, 10):
            obj.forest_for(x + i, y + i, i)  # moving, but threshold off
        assert obj.n_rsmt_calls == 1
        assert obj.n_rsmt_reuses == 9
        assert obj.n_dirty_nets == 0


class TestTelemetryCounters:
    def test_dirty_counters_stream_to_jsonl(self, small_design, tmp_path):
        path = str(tmp_path / "events.jsonl")
        obj = TimingObjective(small_design, _options(rsmt_dirty_threshold=1.0))
        rng = np.random.default_rng(6)
        x = rng.uniform(0, 120, small_design.n_cells)
        y = rng.uniform(0, 120, small_design.n_cells)
        recorder = MetricsRecorder(path)
        with recording(recorder):
            obj.forest_for(x, y, 0)
            x2, y2 = _moved(small_design, rng, x, y)
            obj.forest_for(x2, y2, 1)
        recorder.close()
        events = [json.loads(line) for line in open(path)]
        names = {e.get("name") for e in events}
        assert "rsmt_rebuilds" in names
        assert "rsmt_dirty_nets" in names
        assert "rsmt_rebuilt_nets" in names
        dirty = [e for e in events if e.get("name") == "rsmt_dirty_nets"]
        assert dirty[-1]["value"] == obj.n_dirty_nets


class TestCheckpointReplay:
    def test_state_roundtrip_restores_spliced_forest(self, small_design):
        opts = _options(rsmt_dirty_threshold=1.0)
        obj = TimingObjective(small_design, opts)
        rng = np.random.default_rng(7)
        x = rng.uniform(0, 120, small_design.n_cells)
        y = rng.uniform(0, 120, small_design.n_cells)
        obj.forest_for(x, y, 0)
        x2, y2 = _moved(small_design, rng, x, y)
        forest = obj.forest_for(x2, y2, 1)

        restored = TimingObjective(small_design, opts)
        restored.set_state(obj.get_state())
        assert _forests_equal(restored._forest, forest)
        assert restored.n_dirty_nets == obj.n_dirty_nets
        assert restored.n_rebuilt_nets == obj.n_rebuilt_nets

        # The next call must make the same rebuild decision on both.
        x3, y3 = _moved(small_design, rng, x2, y2)
        fa = obj.forest_for(x3, y3, 2)
        fb = restored.forest_for(x3, y3, 2)
        assert _forests_equal(fa, fb)
        assert restored.n_dirty_nets == obj.n_dirty_nets

    def test_legacy_state_without_pin_snapshot_still_loads(self, small_design):
        obj = TimingObjective(small_design, _options())
        rng = np.random.default_rng(8)
        x = rng.uniform(0, 120, small_design.n_cells)
        y = rng.uniform(0, 120, small_design.n_cells)
        obj.forest_for(x, y, 0)
        state = obj.get_state()
        state.pop("built_pin_coords")  # pre-dirty-net checkpoint shape
        restored = TimingObjective(small_design, _options())
        restored.set_state(state)
        assert _forests_equal(restored._forest, obj._forest)

    def test_placer_resume_replays_dirty_schedule(self, small_design, tmp_path):
        """Kill/resume with the dirty policy on: same final positions,
        same cumulative dirty/rebuild counters (the rebuild schedule is a
        pure function of the replayed trajectory)."""
        timing = _options(
            start_iteration=5, rsmt_dirty_threshold=0.5, rsmt_period=8
        )
        popts = PlacerOptions(
            max_iters=30, min_iters=5, seed=3,
            checkpoint_every=10, checkpoint_dir=str(tmp_path),
        )
        placer = TimingDrivenPlacer(
            small_design, TimingPlacerOptions(placer=popts, timing=timing)
        )
        full = placer.run()
        counters_full = (
            placer.objective.n_dirty_nets,
            placer.objective.n_rebuilt_nets,
        )
        assert counters_full[1] > 0
        files = glob.glob1(str(tmp_path), "*iter000010*")
        assert files, "expected a checkpoint at iteration 10"
        checkpoint = str(tmp_path / files[0])

        resumed_placer = TimingDrivenPlacer(
            small_design,
            TimingPlacerOptions(
                placer=PlacerOptions(
                    max_iters=30, min_iters=5, seed=3, resume_from=checkpoint
                ),
                timing=timing,
            ),
        )
        resumed = resumed_placer.run()
        np.testing.assert_array_equal(full.x, resumed.x)
        np.testing.assert_array_equal(full.y, resumed.y)
        counters_resumed = (
            resumed_placer.objective.n_dirty_nets,
            resumed_placer.objective.n_rebuilt_nets,
        )
        assert counters_resumed == counters_full
