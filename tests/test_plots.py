"""Tests for the SVG plot helpers."""

import numpy as np
import pytest

from repro.harness import curves_svg, placement_svg, save_svg


class TestPlacementSvg:
    def test_valid_svg_with_all_cells(self, small_design):
        svg = placement_svg(small_design)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        # One rect per cell plus die + background.
        assert svg.count("<rect") >= small_design.n_cells

    def test_highlight_color_present(self, small_design):
        movable = np.nonzero(~small_design.cell_fixed)[0][:3]
        svg = placement_svg(small_design, highlight=movable)
        assert "#f57900" in svg

    def test_sequential_cells_colored(self, small_design):
        svg = placement_svg(small_design)
        assert "#cc0000" in svg  # DFFs present in generated designs

    def test_custom_positions_used(self, small_design, spread_positions):
        x, y = spread_positions
        svg1 = placement_svg(small_design)
        svg2 = placement_svg(small_design, x, y)
        assert svg1 != svg2


class TestCurvesSvg:
    def test_basic_plot(self):
        xs = np.arange(10)
        svg = curves_svg(
            {"a": (xs, xs**2), "b": (xs, -xs)},
            title="demo", ylabel="value",
        )
        assert "<polyline" in svg
        assert svg.count("<polyline") == 2
        assert "demo" in svg
        assert "a" in svg and "b" in svg

    def test_negative_values_handled(self):
        xs = [0, 1, 2]
        svg = curves_svg({"wns": (xs, [-100.0, -50.0, -75.0])})
        assert "<polyline" in svg

    def test_constant_series_handled(self):
        svg = curves_svg({"flat": ([0, 1], [5.0, 5.0])})
        assert "<polyline" in svg

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            curves_svg({"x": ([], [])})

    def test_save(self, tmp_path, small_design):
        path = save_svg(placement_svg(small_design), str(tmp_path / "p.svg"))
        with open(path) as fh:
            assert fh.read().startswith("<svg")
