"""Unit and property tests for the LSE smoothing kernels (Section 3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.smoothing import (
    lse_max,
    lse_max_grad,
    lse_min,
    segment_lse_max,
    segment_lse_weights,
    soft_clamp_neg,
    soft_clamp_neg_grad,
)

finite_arrays = st.lists(
    st.floats(min_value=-1e4, max_value=1e4), min_size=1, max_size=12
)


class TestLseMax:
    @settings(max_examples=100, deadline=None)
    @given(values=finite_arrays, gamma=st.floats(min_value=0.1, max_value=100))
    def test_bounds(self, values, gamma):
        """max(x) <= LSE(x) <= max(x) + gamma*log(n)."""
        v = np.array(values)
        out = lse_max(v, gamma)
        assert out >= v.max() - 1e-9
        assert out <= v.max() + gamma * np.log(len(v)) + 1e-9

    def test_single_element_is_identity(self):
        assert lse_max(np.array([5.0]), 10.0) == pytest.approx(5.0)

    def test_small_gamma_approaches_max(self):
        v = np.array([1.0, 4.0, -2.0])
        assert lse_max(v, 0.01) == pytest.approx(4.0, abs=1e-6)

    def test_shift_invariance(self):
        v = np.array([1.0, 2.0, 3.0])
        assert lse_max(v + 100.0, 5.0) == pytest.approx(lse_max(v, 5.0) + 100.0)

    def test_huge_values_no_overflow(self):
        v = np.array([1e8, 1e8 - 5.0])
        out = lse_max(v, 1.0)
        assert np.isfinite(out)
        assert out >= 1e8

    def test_axis_reduction(self):
        v = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = lse_max(v, 0.01, axis=1)
        np.testing.assert_allclose(out, [2.0, 4.0], atol=1e-6)


class TestLseMin:
    @settings(max_examples=60, deadline=None)
    @given(values=finite_arrays, gamma=st.floats(min_value=0.1, max_value=100))
    def test_bounds(self, values, gamma):
        v = np.array(values)
        out = lse_min(v, gamma)
        assert out <= v.min() + 1e-9
        assert out >= v.min() - gamma * np.log(len(v)) - 1e-9

    def test_duality(self):
        v = np.array([3.0, -1.0, 2.0])
        assert lse_min(v, 2.0) == pytest.approx(-lse_max(-v, 2.0))


class TestLseGrad:
    @settings(max_examples=60, deadline=None)
    @given(values=finite_arrays, gamma=st.floats(min_value=0.5, max_value=50))
    def test_softmax_weights_sum_to_one(self, values, gamma):
        v = np.array(values)
        w = lse_max_grad(v, gamma)
        assert w.sum() == pytest.approx(1.0, abs=1e-9)
        assert (w >= 0).all()

    def test_matches_finite_difference(self):
        rng = np.random.default_rng(0)
        v = rng.uniform(-10, 10, 6)
        gamma = 3.0
        w = lse_max_grad(v, gamma)
        eps = 1e-6
        for i in range(6):
            vp, vm = v.copy(), v.copy()
            vp[i] += eps
            vm[i] -= eps
            fd = (lse_max(vp, gamma) - lse_max(vm, gamma)) / (2 * eps)
            assert w[i] == pytest.approx(fd, rel=1e-5, abs=1e-8)


class TestSoftClampNeg:
    def test_limits(self):
        # Very positive slack -> ~0; very negative -> ~slack.
        assert soft_clamp_neg(np.array([1e4]), 10.0)[0] == pytest.approx(0.0, abs=1e-6)
        assert soft_clamp_neg(np.array([-1e4]), 10.0)[0] == pytest.approx(
            -1e4, rel=1e-6
        )

    def test_always_below_zero_and_above_slack(self):
        s = np.linspace(-100, 100, 41)
        out = soft_clamp_neg(s, 5.0)
        assert (out <= 0 + 1e-12).all()
        assert (out <= np.minimum(s, 0) + 5.0 * np.log(2) + 1e-9).all()
        assert (out >= np.minimum(s, 0) - 5.0 * np.log(2) - 1e-9).all()

    def test_grad_matches_fd(self):
        s = np.linspace(-30, 30, 13)
        g = soft_clamp_neg_grad(s, 7.0)
        eps = 1e-6
        fd = (soft_clamp_neg(s + eps, 7.0) - soft_clamp_neg(s - eps, 7.0)) / (2 * eps)
        np.testing.assert_allclose(g, fd, rtol=1e-5, atol=1e-9)

    def test_grad_in_unit_interval(self):
        s = np.array([-1e6, -10.0, 0.0, 10.0, 1e6])
        g = soft_clamp_neg_grad(s, 5.0)
        assert (g >= 0).all() and (g <= 1).all()
        assert g[0] == pytest.approx(1.0)
        assert g[-1] == pytest.approx(0.0, abs=1e-9)
        assert g[2] == pytest.approx(0.5)


class TestSegmentKernels:
    def test_matches_dense_lse_per_group(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(-20, 20, 30)
        seg = rng.integers(0, 5, 30)
        gamma = 4.0
        out = segment_lse_max(values, seg, 5, gamma)
        for g in range(5):
            members = values[seg == g]
            if len(members):
                assert out[g] == pytest.approx(lse_max(members, gamma))

    def test_empty_groups_get_sentinel(self):
        values = np.array([1.0])
        seg = np.array([2])
        out = segment_lse_max(values, seg, 4, 1.0, empty_value=-123.0)
        assert out[0] == -123.0
        assert out[2] == pytest.approx(1.0)

    def test_weights_sum_to_one_per_group(self):
        rng = np.random.default_rng(2)
        values = rng.uniform(-5, 5, 40)
        seg = rng.integers(0, 6, 40)
        gamma = 2.0
        smoothed = segment_lse_max(values, seg, 6, gamma)
        w = segment_lse_weights(values, seg, smoothed, gamma)
        for g in range(6):
            members = w[seg == g]
            if len(members):
                assert members.sum() == pytest.approx(1.0, abs=1e-9)

    def test_sentinel_candidates_get_zero_weight(self):
        values = np.array([-1e30, 5.0])
        seg = np.array([0, 0])
        smoothed = segment_lse_max(values, seg, 1, 2.0)
        w = segment_lse_weights(values, seg, smoothed, 2.0)
        assert w[0] == pytest.approx(0.0, abs=1e-12)
        assert w[1] == pytest.approx(1.0, abs=1e-9)
