"""Run-registry lifecycle: register, beat, clean exit, SIGKILL, GC.

The acceptance scenarios of the live-observability registry:

- a run registers on start and its clean exit removes the record;
- a SIGKILL'd process leaves its last beat behind, ``status`` flags the
  record as dead, and a later registry user garbage-collects it;
- stale detection distinguishes a hung-but-alive run from a dead one;
- the placer loop and ``run_mode`` feed heartbeats end to end.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro.harness.supervisor as supervisor_mod
from repro.harness.runners import run_mode
from repro.place.placer import PlacerOptions
from repro.telemetry.registry import (
    DEFAULT_STALE_AFTER_S,
    Heartbeat,
    HeartbeatRecord,
    RunRegistry,
    current_heartbeat,
    heartbeating,
    pid_alive,
)


def _record(run_id="r1", pid=None, **kwargs):
    return HeartbeatRecord(
        run_id=run_id,
        pid=pid if pid is not None else os.getpid(),
        design="miniblue1",
        mode="ours",
        **kwargs,
    )


class TestLifecycle:
    def test_register_beat_clean_exit_removes(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        beat = Heartbeat(registry, _record(), min_interval_s=0.0)
        assert registry.read("r1") is not None
        assert beat.update(phase="place", iteration=3)
        stored = registry.read("r1")
        assert stored.phase == "place"
        assert stored.iteration == 3
        beat.close(remove=True)
        assert registry.read("r1") is None
        assert registry.list() == []

    def test_close_without_remove_keeps_post_mortem_record(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        beat = Heartbeat(registry, _record(), min_interval_s=0.0)
        beat.update(phase="rsmt_rebuild", iteration=412)
        beat.close(remove=False)
        stored = registry.read("r1")
        assert stored.phase == "rsmt_rebuild" and stored.iteration == 412
        # A closed heartbeat never writes again.
        assert not beat.update(phase="sta", force=True)

    def test_throttle_skips_fast_beats_but_phase_change_writes(
        self, tmp_path
    ):
        registry = RunRegistry(str(tmp_path))
        beat = Heartbeat(registry, _record(), min_interval_s=3600.0)
        assert not beat.update(iteration=1), "inside min_interval"
        assert beat.update(phase="place", iteration=2), "phase change"
        assert not beat.update(iteration=3)
        assert beat.update(iteration=4, force=True)
        # Unwritten progress still lands with the next persisted beat.
        assert registry.read("r1").iteration == 4

    def test_iteration_rate_uses_first_iteration_anchor(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        beat = Heartbeat(registry, _record(), min_interval_s=0.0)
        assert registry.read("r1").iteration_rate() is None
        beat.update(iteration=10)
        beat.record.anchor_ts -= 2.0  # pretend the anchor is 2s old
        beat.update(iteration=30, force=True)
        rate = registry.read("r1").iteration_rate()
        assert rate == pytest.approx(10.0, rel=0.2)

    def test_heartbeating_arms_and_restores(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        beat = Heartbeat(registry, _record())
        assert current_heartbeat() is None
        with heartbeating(beat):
            assert current_heartbeat() is beat
        assert current_heartbeat() is None
        with heartbeating(None):
            assert current_heartbeat() is None


class TestStates:
    def test_fresh_record_with_live_pid_is_live(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        Heartbeat(registry, _record())
        assert registry.read("r1").state() == "live"

    def test_old_beat_with_live_pid_is_stale_not_garbage(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        record = _record()
        Heartbeat(registry, record)
        stored = registry.read("r1")
        now = stored.ts + DEFAULT_STALE_AFTER_S + 1.0
        assert stored.state(now=now) == "stale"
        # GC only collects dead pids: a hung run is evidence, not trash.
        assert registry.gc() == []
        assert registry.read("r1") is not None

    def test_dead_pid_is_dead_and_gc_collects(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        assert not pid_alive(proc.pid)
        registry.write(_record(run_id="gone", pid=proc.pid))
        assert registry.read("gone").state() == "dead"
        collected = registry.gc()
        assert [r.run_id for r in collected] == ["gone"]
        assert registry.read("gone") is None


_CHILD_SCRIPT = """
import os, sys, time
from repro.telemetry.registry import Heartbeat, HeartbeatRecord, RunRegistry

registry = RunRegistry(sys.argv[1])
beat = Heartbeat(registry, HeartbeatRecord(
    run_id="victim", pid=os.getpid(), design="miniblue1", mode="ours",
), min_interval_s=0.0)
beat.update(phase="place", iteration=412)
print("ready", flush=True)
time.sleep(600)
"""


class TestSigkilledRun:
    def test_sigkill_leaves_record_status_flags_later_run_gcs(
        self, tmp_path, capsys
    ):
        """Satellite scenario: SIGKILL a beating process; the record
        survives as the post-mortem, ``status`` shows it dead, and the
        next registry user garbage-collects it."""
        from repro.harness.__main__ import main as harness_main

        base = str(tmp_path)
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(os.path.dirname(__file__), os.pardir, "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", _CHILD_SCRIPT, base],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "ready"
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait()
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()

        registry = RunRegistry(base)
        stored = registry.read("victim")
        assert stored is not None, "SIGKILL must not erase the last beat"
        assert stored.phase == "place" and stored.iteration == 412
        assert stored.state() == "dead"

        assert harness_main(["status", base]) == 0
        out = capsys.readouterr().out
        assert "victim" in out and "dead" in out

        # The post-mortem is still readable the way the supervisor
        # quotes it in timeout/quarantine errors.
        heartbeat = {
            "phase": stored.phase,
            "iteration": stored.iteration,
            "age_s": round(stored.age_s(), 1),
        }
        message = supervisor_mod._Supervisor._describe_heartbeat(heartbeat)
        assert "at iteration 412 in place" in message
        assert "silent for" in message

        # A later `status --gc` (any new registry user would do the
        # same) collects the dead record.
        assert harness_main(["status", base, "--gc"]) == 0
        assert "gc: removed dead record victim" in capsys.readouterr().out
        assert registry.read("victim") is None

    def test_describe_heartbeat_formats(self):
        describe = supervisor_mod._Supervisor._describe_heartbeat
        assert describe(None) == ""
        assert describe(
            {"phase": "rsmt_rebuild", "iteration": 412, "age_s": 93.0}
        ) == "; last seen at iteration 412 in rsmt_rebuild, silent for 93s"
        assert describe(
            {"phase": "setup", "iteration": None, "age_s": 5.0}
        ) == "; last seen in setup, silent for 5s"


class TestRunModeIntegration:
    def test_run_registers_beats_and_cleans_up(
        self, small_design, tmp_path, monkeypatch
    ):
        base = str(tmp_path / "tel")
        registry = RunRegistry(base)
        seen = {}
        original = RunRegistry.write

        def spy(self, record):
            seen.setdefault("phases", set()).add(record.phase)
            seen["last"] = record
            return original(self, record)

        monkeypatch.setattr(RunRegistry, "write", spy)
        record = run_mode(
            small_design,
            "dreamplace",
            placer_options=PlacerOptions(max_iters=8, min_iters=2, seed=0),
            telemetry_dir=base,
            run_id="lifecycle",
        )
        # The run registered, progressed through its phases, and the
        # clean finalize removed the record.
        assert {"setup", "place", "sta"} <= seen["phases"]
        assert seen["last"].pid == os.getpid()
        assert registry.list() == []
        # The manifest rolled up the run's resource usage (POSIX only).
        manifest_path = os.path.join(base, "lifecycle", "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        if record.resources is not None:
            assert manifest["resources"]["peak_rss_bytes"] > 0
            assert manifest["resources"]["cpu_user_s"] >= 0.0

    def test_torn_registry_record_reads_as_absent(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        os.makedirs(registry.path, exist_ok=True)
        with open(os.path.join(registry.path, "torn.json"), "w") as handle:
            handle.write('{"run_id": "torn", "pid"')
        assert registry.read("torn") is None
        assert registry.list() == []
