"""Design-bundle cache: bit-identical hits, key sensitivity, corruption.

The cache may never change results: a hit must be bit-identical to
regeneration (CSRs, LUT banks, levelization), any generator knob or
seed change must produce a different key, and a damaged file must be
detected and regenerated, never trusted.
"""

import dataclasses
import os

import numpy as np
import pytest

from repro.netlist.cache import (
    CACHE_ENV_VAR,
    cache_dir,
    clear_memo,
    design_cache_key,
    ensure_cached,
    load_bundle,
)
from repro.netlist.generator import GeneratorSpec, generate_design
from repro.sta.graph import TimingGraph

_SPEC = GeneratorSpec(name="cachetest", n_cells=150, depth=6, seed=7)

#: The design arrays that make up the netlist CSRs.
_DESIGN_ARRAYS = (
    "cell_type",
    "cell_x",
    "cell_y",
    "cell_fixed",
    "pin2cell",
    "pin2net",
    "net2pin_start",
    "net2pin",
    "net_driver",
    "pin_cap",
)

#: Levelization + banked-LUT arc tables of the timing graph.
_GRAPH_ARRAYS = ("level", "c_src", "c_dst", "c_lut_delay", "net_sink")


@pytest.fixture()
def cdir(tmp_path):
    clear_memo()
    yield str(tmp_path / "cache")
    clear_memo()


def _bundle_file(directory):
    (name,) = os.listdir(directory)
    return os.path.join(directory, name)


class TestBitIdenticalHit:
    def test_miss_then_hit_roundtrip(self, cdir):
        fresh = generate_design(_SPEC)
        bundle, info = load_bundle(_SPEC, cdir)
        assert not info.hit and not info.memo_hit
        clear_memo()
        cached, info2 = load_bundle(_SPEC, cdir)
        assert info2.hit and not info2.memo_hit
        for attr in _DESIGN_ARRAYS:
            np.testing.assert_array_equal(
                getattr(cached.design, attr), getattr(fresh, attr)
            )
        fresh_graph = TimingGraph(fresh)
        for attr in _GRAPH_ARRAYS:
            np.testing.assert_array_equal(
                getattr(cached.graph, attr), getattr(fresh_graph, attr)
            )
        assert len(cached.graph.lutbank) == len(fresh_graph.lutbank)
        assert cached.graph.n_levels == fresh_graph.n_levels

    def test_graph_shares_the_bundled_design(self, cdir):
        load_bundle(_SPEC, cdir)
        clear_memo()
        bundle, _ = load_bundle(_SPEC, cdir)
        # The pickled graph must reference the pickled design, not a copy.
        assert bundle.graph.design is bundle.design

    def test_memo_returns_same_object(self, cdir):
        b1, _ = load_bundle(_SPEC, cdir)
        b2, info = load_bundle(_SPEC, cdir)
        assert b1 is b2
        assert info.memo_hit

    def test_sta_identical_with_and_without_cache(self, cdir):
        from repro.sta.analysis import run_sta

        fresh = generate_design(_SPEC)
        bundle, _ = load_bundle(_SPEC, cdir)
        a = run_sta(fresh)
        b = run_sta(bundle.design, graph=bundle.graph)
        assert a.wns_setup == b.wns_setup
        assert a.tns_setup == b.tns_setup


class TestKeySensitivity:
    def test_every_field_changes_the_key(self):
        base = design_cache_key(_SPEC)
        perturbed = {
            "name": "other",
            "n_cells": _SPEC.n_cells + 1,
            "depth": _SPEC.depth + 1,
            "seed": _SPEC.seed + 1,
            "n_inputs": _SPEC.n_inputs + 1,
            "n_outputs": _SPEC.n_outputs + 1,
            "engine": "vectorized",
        }
        for field, value in perturbed.items():
            spec = dataclasses.replace(_SPEC, **{field: value})
            assert design_cache_key(spec) != base, field

    def test_key_is_stable(self):
        assert design_cache_key(_SPEC) == design_cache_key(
            dataclasses.replace(_SPEC)
        )

    def test_distinct_specs_get_distinct_files(self, cdir):
        load_bundle(_SPEC, cdir)
        load_bundle(dataclasses.replace(_SPEC, seed=8), cdir)
        assert len(os.listdir(cdir)) == 2


class TestCorruptionRecovery:
    def _prime(self, cdir):
        ensure_cached(_SPEC, cdir)
        clear_memo()
        return _bundle_file(cdir)

    def test_truncated_file_regenerated(self, cdir):
        path = self._prime(cdir)
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        bundle, info = load_bundle(_SPEC, cdir)
        assert not info.hit and info.corrupt_recovered
        assert bundle.design.n_cells > 0
        # The rewritten file must be valid again.
        clear_memo()
        _, info2 = load_bundle(_SPEC, cdir)
        assert info2.hit and not info2.corrupt_recovered

    def test_flipped_payload_byte_fails_checksum(self, cdir):
        path = self._prime(cdir)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        _, info = load_bundle(_SPEC, cdir)
        assert not info.hit and info.corrupt_recovered

    def test_bad_magic_is_a_miss(self, cdir):
        path = self._prime(cdir)
        blob = bytearray(open(path, "rb").read())
        blob[:4] = b"XXXX"
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        _, info = load_bundle(_SPEC, cdir)
        assert not info.hit and info.corrupt_recovered

    def test_empty_file_is_a_miss(self, cdir):
        path = self._prime(cdir)
        open(path, "wb").close()
        bundle, info = load_bundle(_SPEC, cdir)
        assert not info.hit
        assert bundle.graph.n_levels > 0


class TestDirectoryResolution:
    def test_explicit_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "env"))
        assert cache_dir(str(tmp_path / "explicit")) == str(
            tmp_path / "explicit"
        )

    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "env"))
        assert cache_dir() == str(tmp_path / "env")
        clear_memo()
        _, info = load_bundle(_SPEC)
        assert info.path.startswith(str(tmp_path / "env"))
        clear_memo()
