"""Tests for full design-bundle persistence (.v/.lib/.sdc/.def)."""

import os

import numpy as np
import pytest

from repro.netlist import load_design_bundle, save_design
from repro.sta import run_sta


class TestBundleRoundTrip:
    def test_files_written(self, tmp_path, small_design):
        manifest = save_design(small_design, str(tmp_path))
        assert os.path.exists(manifest)
        for ext in ("v", "lib", "sdc", "def"):
            assert os.path.exists(str(tmp_path / f"{small_design.name}.{ext}"))

    def test_structure_roundtrip(self, tmp_path, small_design):
        save_design(small_design, str(tmp_path))
        d2, x, y = load_design_bundle(str(tmp_path))
        assert d2.n_cells == small_design.n_cells
        assert d2.n_nets == small_design.n_nets
        assert d2.n_pins == small_design.n_pins
        assert d2.die == pytest.approx(small_design.die)
        assert d2.row_height == pytest.approx(small_design.row_height)
        assert d2.constraints.clock_period == pytest.approx(
            small_design.constraints.clock_period
        )

    def test_placement_roundtrip(self, tmp_path, small_design, spread_positions):
        x0, y0 = spread_positions
        save_design(small_design, str(tmp_path), x0, y0)
        d2, x, y = load_design_bundle(str(tmp_path))
        # Match by name (cell order may differ between models).
        for ci in range(small_design.n_cells):
            j = d2.cell_index(small_design.cell_name[ci])
            assert x[j] == pytest.approx(x0[ci], abs=1e-3)
            assert y[j] == pytest.approx(y0[ci], abs=1e-3)

    def test_timing_equivalence(self, tmp_path, small_design, spread_positions):
        """STA of the reloaded bundle matches the original design."""
        x0, y0 = spread_positions
        save_design(small_design, str(tmp_path), x0, y0)
        d2, x, y = load_design_bundle(str(tmp_path))
        r1 = run_sta(small_design, x0, y0)
        r2 = run_sta(d2)
        # Two sources of tiny drift: DEF's 1e-3 um coordinate quantisation
        # and RSMT tie-breaking under the round-trip's different net pin
        # order (both routings are valid; Elmore delays differ slightly).
        assert r2.wns_setup == pytest.approx(r1.wns_setup, rel=0.02)
        assert r2.tns_setup == pytest.approx(r1.tns_setup, rel=0.02)

    def test_double_roundtrip_stable(self, tmp_path, small_design):
        save_design(small_design, str(tmp_path / "a"))
        d2, _, _ = load_design_bundle(str(tmp_path / "a"))
        save_design(d2, str(tmp_path / "b"))
        d3, _, _ = load_design_bundle(str(tmp_path / "b"))
        assert d3.n_pins == d2.n_pins
        assert sorted(d3.cell_name) == sorted(d2.cell_name)
