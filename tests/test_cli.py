"""Tests for the command-line interfaces."""

import os

import pytest

from repro.__main__ import main as repro_main
from repro.harness.__main__ import main as harness_main


@pytest.fixture(scope="module")
def bundle_dir(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli_bundle"))
    code = repro_main(
        [
            "generate",
            "--cells", "150",
            "--depth", "6",
            "--seed", "3",
            "--name", "clitest",
            "--out", path,
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_bundle_files_exist(self, bundle_dir):
        for ext in ("v", "lib", "sdc", "def"):
            assert os.path.exists(os.path.join(bundle_dir, f"clitest.{ext}"))
        assert os.path.exists(os.path.join(bundle_dir, "design.json"))


class TestSta:
    def test_report_printed(self, bundle_dir, capsys):
        code = repro_main(["sta", "--bundle", bundle_dir, "--hold"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Timing report" in out
        assert "hold:" in out

    def test_propagated_clock_flag(self, bundle_dir, capsys):
        code = repro_main(
            ["sta", "--bundle", bundle_dir, "--propagated-clock"]
        )
        assert code == 0
        assert "clock skew" in capsys.readouterr().out

    def test_paths_flag(self, bundle_dir, capsys):
        code = repro_main(["sta", "--bundle", bundle_dir, "--paths", "2"])
        assert code == 0
        assert capsys.readouterr().out.count("Path to") == 2

    def test_d2m_model(self, bundle_dir, capsys):
        code = repro_main(
            ["sta", "--bundle", bundle_dir, "--wire-model", "d2m"]
        )
        assert code == 0


class TestPlace:
    def test_place_writes_updated_bundle(self, bundle_dir, tmp_path, capsys):
        out = str(tmp_path / "placed")
        code = repro_main(
            [
                "place",
                "--bundle", bundle_dir,
                "--mode", "dreamplace",
                "--max-iters", "150",
                "--out", out,
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "legalized" in text
        assert os.path.exists(os.path.join(out, "clitest.def"))

    def test_invalid_mode_rejected(self, bundle_dir):
        with pytest.raises(SystemExit):
            repro_main(["place", "--bundle", bundle_dir, "--mode", "magic"])


class TestHarnessCli:
    def test_table2_only(self, capsys):
        # Run with a single tiny design to keep this test fast.
        code = harness_main(
            ["--designs", "miniblue18", "--max-iters", "120"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "miniblue18" in out
        assert "Avg. Ratio" in out

    def test_bench_forwarding(self, capsys):
        code = repro_main(
            ["bench", "--designs", "miniblue18", "--max-iters", "120"]
        )
        assert code == 0
        assert "Table 3" in capsys.readouterr().out
