"""Tests for slack-histogram reporting (the [34] view of timing quality)."""

import numpy as np
import pytest

from repro.netlist import make_chain_design
from repro.sta import (
    format_histogram,
    histogram_compression,
    report_design,
    run_sta,
    slack_histogram,
)


@pytest.fixture(scope="module")
def result(small_design, spread_positions):
    x, y = spread_positions
    return run_sta(small_design, x, y)


class TestSlackHistogram:
    def test_counts_cover_all_endpoints(self, result):
        hist = slack_histogram(result)
        assert hist.counts.sum() == hist.n_endpoints
        assert hist.n_endpoints == len(result.endpoint_slack)

    def test_wns_tns_consistent_with_sta(self, result):
        hist = slack_histogram(result)
        assert hist.wns == pytest.approx(result.wns_setup)
        assert hist.tns == pytest.approx(result.tns_setup)

    def test_violating_count(self, result):
        hist = slack_histogram(result)
        assert hist.n_violating == int((result.endpoint_slack < 0).sum())
        assert 0 <= hist.violation_fraction <= 1

    def test_edges_monotone(self, result):
        hist = slack_histogram(result, n_bins=8)
        assert len(hist.edges) == 9
        assert (np.diff(hist.edges) > 0).all()

    def test_clip_limits_positive_tail(self, result):
        hist = slack_histogram(result, clip=0.0)
        assert hist.edges[-1] == pytest.approx(0.0)
        assert hist.counts.sum() == hist.n_endpoints

    def test_all_positive_design(self):
        d = make_chain_design(3, clock_period=100000.0)
        hist = slack_histogram(run_sta(d))
        assert hist.n_violating == 0
        assert hist.tns == 0.0


class TestFormatting:
    def test_format_has_one_line_per_bin(self, result):
        hist = slack_histogram(result, n_bins=10)
        text = format_histogram(hist)
        assert len(text.splitlines()) == 10 + 2

    def test_report_contains_sections(self, result):
        text = report_design(result)
        assert "Timing report" in text
        assert "WNS / TNS" in text
        assert "worst endpoints:" in text
        # Worst endpoint pin named.
        worst = int(np.argmin(result.endpoint_slack))
        pin = result.graph.design.pin_name[int(result.graph.endpoint_pins[worst])]
        assert pin in text


class TestCompression:
    def test_identity_is_zero(self, result):
        hist = slack_histogram(result)
        assert histogram_compression(hist, hist) == pytest.approx(0.0)

    def test_improvement_positive(self, result, small_design):
        from dataclasses import replace

        before = slack_histogram(result)
        after = replace(before, tns=before.tns * 0.5)
        assert histogram_compression(before, after) == pytest.approx(0.5)

    def test_no_violations_before_gives_zero(self):
        d = make_chain_design(3, clock_period=100000.0)
        hist = slack_histogram(run_sta(d))
        assert histogram_compression(hist, hist) == 0.0

    def test_placer_compresses_histogram(self, medium_design):
        from repro.core import TimingDrivenPlacer, TimingPlacerOptions
        from repro.place import GlobalPlacer, PlacerOptions

        popts = PlacerOptions(max_iters=450, seed=0)
        base = GlobalPlacer(medium_design, popts).run()
        ours = TimingDrivenPlacer(
            medium_design, TimingPlacerOptions(placer=popts, sta_in_trace=False)
        ).run()
        h_base = slack_histogram(run_sta(medium_design, base.x, base.y))
        h_ours = slack_histogram(run_sta(medium_design, ours.x, ours.y))
        assert histogram_compression(h_base, h_ours) > 0
