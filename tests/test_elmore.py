"""Unit tests for the Elmore forward pass against an O(n^2) reference.

The vectorised 4-pass DP is checked against the textbook closed forms:

    Delay(v) = sum_u Cap(u) * R_common(u, v)
    Beta(v)  = sum_u Cap(u) * Delay(u) * R_common(u, v)

where ``R_common`` is the resistance of the shared root path.
"""

import numpy as np
import pytest

from repro.netlist import WireModel
from repro.route import Forest, RoutingTree, build_forest
from repro.sta.elmore import elmore_forward, node_caps


def make_tree(x, y, parent, root, pins=None):
    n = len(x)
    pins_arr = np.arange(n) if pins is None else np.asarray(pins)
    return RoutingTree(
        x=np.asarray(x, float),
        y=np.asarray(y, float),
        parent=np.asarray(parent, dtype=np.int64),
        pins=pins_arr,
        owner_x=np.arange(n),
        owner_y=np.arange(n),
        root=root,
    )


def brute_force_reference(forest, node_x, node_y, caps, wire):
    """O(n^2) Elmore delays/betas per tree via shared-path resistance."""
    n = forest.n_nodes
    parent = forest.parent
    res = wire.res_per_um * forest.edge_lengths(node_x, node_y)
    total_cap = caps.copy()
    hw = 0.5 * wire.cap_per_um * forest.edge_lengths(node_x, node_y)
    total_cap[forest.has_parent] += hw[forest.has_parent]
    np.add.at(total_cap, parent[forest.has_parent], hw[forest.has_parent])

    def root_path(v):
        path = []
        while parent[v] >= 0:
            path.append(v)
            v = parent[v]
        return set(path)

    paths = [root_path(v) for v in range(n)]
    delay = np.zeros(n)
    for v in range(n):
        for u in range(n):
            if forest.node_net[u] != forest.node_net[v]:
                continue
            shared = paths[u] & paths[v]
            delay[v] += total_cap[u] * sum(res[e] for e in shared)
    beta = np.zeros(n)
    for v in range(n):
        for u in range(n):
            if forest.node_net[u] != forest.node_net[v]:
                continue
            shared = paths[u] & paths[v]
            beta[v] += total_cap[u] * delay[u] * sum(res[e] for e in shared)
    return delay, beta, total_cap


class TestClosedForms:
    def test_two_pin_wire(self):
        """Driver at 0, sink at distance L: delay = R*(C_w/2 + C_pin)."""
        wire = WireModel(res_per_um=0.01, cap_per_um=0.2)
        tree = make_tree([0.0, 10.0], [0.0, 0.0], [-1, 0], 0)
        forest = Forest([tree], 2)
        caps = np.array([0.0, 3.0])  # driver 0 fF, sink 3 fF
        res = elmore_forward(
            forest, tree.x, tree.y, caps, wire
        )
        r_wire = 0.01 * 10.0
        c_half = 0.5 * 0.2 * 10.0
        expected = r_wire * (c_half + 3.0)
        assert res.delay[1] == pytest.approx(expected)
        assert res.delay[0] == 0.0
        assert res.load[0] == pytest.approx(2 * c_half + 3.0)

    def test_star_loads_sum(self):
        wire = WireModel(res_per_um=0.01, cap_per_um=0.1)
        tree = make_tree(
            [0.0, 5.0, -5.0, 0.0], [0.0, 0.0, 0.0, 7.0], [-1, 0, 0, 0], 0
        )
        forest = Forest([tree], 4)
        caps = np.array([0.0, 1.0, 2.0, 3.0])
        res = elmore_forward(forest, tree.x, tree.y, caps, wire)
        wire_cap = 0.1 * (5 + 5 + 7)
        assert res.load[0] == pytest.approx(1 + 2 + 3 + wire_cap)

    def test_impulse_non_negative(self, small_design, spread_positions):
        x, y = spread_positions
        forest = build_forest(small_design, x, y)
        px, py = small_design.pin_positions(x, y)
        nx, ny = forest.node_coords(px, py)
        caps = node_caps(forest, small_design.pin_cap)
        res = elmore_forward(forest, nx, ny, caps, small_design.library.wire)
        assert (res.impulse >= 0).all()
        assert (res.delay >= 0).all()
        assert (res.load > 0).all()


class TestAgainstBruteForce:
    def test_random_forest_matches_reference(self, small_design, spread_positions):
        x, y = spread_positions
        forest = build_forest(small_design, x, y)
        px, py = small_design.pin_positions(x, y)
        nx, ny = forest.node_coords(px, py)
        caps = node_caps(forest, small_design.pin_cap)
        wire = small_design.library.wire
        res = elmore_forward(forest, nx, ny, caps, wire)
        ref_delay, ref_beta, ref_cap = brute_force_reference(
            forest, nx, ny, caps, wire
        )
        np.testing.assert_allclose(res.cap, ref_cap, rtol=1e-10)
        np.testing.assert_allclose(res.delay, ref_delay, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(res.beta, ref_beta, rtol=1e-9, atol=1e-12)

    def test_deep_chain_tree(self):
        n = 12
        wire = WireModel(res_per_um=0.02, cap_per_um=0.15)
        x = np.cumsum(np.ones(n)) * 3.0
        y = np.zeros(n)
        parent = np.arange(-1, n - 1)
        tree = make_tree(x, y, parent, 0)
        forest = Forest([tree], n)
        caps = np.linspace(1.0, 2.0, n)
        res = elmore_forward(forest, tree.x, tree.y, caps, wire)
        ref_delay, ref_beta, _ = brute_force_reference(
            forest, tree.x, tree.y, caps, wire
        )
        np.testing.assert_allclose(res.delay, ref_delay, rtol=1e-9)
        np.testing.assert_allclose(res.beta, ref_beta, rtol=1e-9)
        # Delay is monotone along the chain.
        assert (np.diff(res.delay) > 0).all()


class TestRootLoad:
    def test_scatters_to_driver_pins(self, small_design, spread_positions):
        x, y = spread_positions
        forest = build_forest(small_design, x, y)
        px, py = small_design.pin_positions(x, y)
        nx, ny = forest.node_coords(px, py)
        caps = node_caps(forest, small_design.pin_cap)
        res = elmore_forward(forest, nx, ny, caps, small_design.library.wire)
        loads = res.root_load(forest, small_design.n_pins)
        roots = np.nonzero(forest.is_root)[0]
        for r in roots:
            pin = forest.node_pin[r]
            assert loads[pin] == pytest.approx(res.load[r])
        # Non-driver pins carry zero.
        sinks = forest.node_pin[(forest.node_pin >= 0) & ~forest.is_root]
        assert (loads[sinks] == 0).all()

    def test_extra_pin_cap_adds_to_load(self, small_design, spread_positions):
        x, y = spread_positions
        forest = build_forest(small_design, x, y)
        px, py = small_design.pin_positions(x, y)
        nx, ny = forest.node_coords(px, py)
        wire = small_design.library.wire
        caps0 = node_caps(forest, small_design.pin_cap)
        extra = np.ones(small_design.n_pins)
        caps1 = node_caps(forest, small_design.pin_cap, extra)
        res0 = elmore_forward(forest, nx, ny, caps0, wire)
        res1 = elmore_forward(forest, nx, ny, caps1, wire)
        assert (res1.load >= res0.load - 1e-12).all()
        assert res1.load.sum() > res0.load.sum()
