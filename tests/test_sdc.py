"""Unit tests for the SDC subset parser/writer."""

import pytest

from repro.netlist import Constraints, SDCError, parse_sdc, write_sdc


class TestParse:
    def test_create_clock(self):
        c = parse_sdc("create_clock -name clk -period 750 [get_ports clock]")
        assert c.clock_period == 750.0
        assert c.clock_port == "clock"

    def test_input_output_delay(self):
        text = (
            "create_clock -name c -period 100 [get_ports clk]\n"
            "set_input_delay 12.5 -clock c [get_ports in0]\n"
            "set_output_delay 7 -clock c [get_ports out0]\n"
        )
        c = parse_sdc(text)
        assert c.input_delay("in0") == 12.5
        assert c.output_delay("out0") == 7.0

    def test_port_lists_in_braces(self):
        c = parse_sdc("set_input_delay 5 [get_ports {a b c}]")
        assert c.input_delay("a") == c.input_delay("b") == c.input_delay("c") == 5.0

    def test_transition_and_load(self):
        text = (
            "set_input_transition 30 [get_ports a]\n"
            "set_load 6.5 [get_ports z]\n"
        )
        c = parse_sdc(text)
        assert c.input_slew("a") == 30.0
        assert c.output_load("z") == 6.5

    def test_line_continuation_and_comments(self):
        text = (
            "# a comment\n"
            "set_input_delay 5 \\\n"
            "  [get_ports a]  # trailing\n"
        )
        c = parse_sdc(text)
        assert c.input_delay("a") == 5.0

    def test_all_inputs_requires_design(self):
        with pytest.raises(SDCError, match="all_inputs"):
            parse_sdc("set_input_delay 5 [all_inputs]")

    def test_all_inputs_resolves_against_design(self, chain_design):
        c = parse_sdc("set_input_delay 5 [all_inputs]", design=chain_design)
        assert c.input_delay("in0") == 5.0
        assert c.input_delay("clk") == 5.0  # all_inputs includes the clock port

    def test_all_outputs_resolves_against_design(self, chain_design):
        c = parse_sdc("set_load 3 [all_outputs]", design=chain_design)
        assert c.output_load("out0") == 3.0

    def test_unknown_command_rejected(self):
        with pytest.raises(SDCError, match="unsupported"):
            parse_sdc("set_false_path -from x")

    def test_missing_value_rejected(self):
        with pytest.raises(SDCError):
            parse_sdc("set_input_delay [get_ports a]")


class TestRoundTrip:
    def test_full_roundtrip(self):
        c = Constraints(
            clock_period=640.0,
            clock_port="clk",
            input_delays={"a": 5.0, "b": 6.25},
            output_delays={"z": 3.0},
            input_slews={"a": 22.0},
            output_loads={"z": 4.5},
        )
        c2 = parse_sdc(write_sdc(c))
        assert c2.clock_period == c.clock_period
        assert c2.clock_port == c.clock_port
        assert c2.input_delays == c.input_delays
        assert c2.output_delays == c.output_delays
        assert c2.input_slews == c.input_slews
        assert c2.output_loads == c.output_loads

    def test_file_roundtrip(self, tmp_path):
        from repro.netlist import read_sdc_file, write_sdc_file

        c = Constraints(clock_period=123.0, input_delays={"p": 1.0})
        path = str(tmp_path / "c.sdc")
        write_sdc_file(c, path)
        c2 = read_sdc_file(path)
        assert c2.clock_period == 123.0
        assert c2.input_delay("p") == 1.0

    def test_generated_design_constraints_roundtrip(self, small_design):
        c = small_design.constraints
        c2 = parse_sdc(write_sdc(c))
        assert c2.clock_period == c.clock_period
        assert c2.input_delays == pytest.approx(c.input_delays)
        assert c2.output_loads == pytest.approx(c.output_loads)
