"""Numerical guard unit tests (repro.runtime.guard).

The guard must zero a poisoned term in place, count and expose every
event, track consecutive failures for escalation, and round-trip its
state through checkpoints.
"""

import numpy as np

from repro.runtime import NumericalGuard


class TestCheckTerm:
    def test_healthy_term_untouched(self):
        guard = NumericalGuard(log=False)
        gx = np.array([1.0, -2.0, 3.0])
        gy = np.array([0.5, 0.0, -1.0])
        assert guard.check_term("wirelength", 0, gx, gy)
        np.testing.assert_array_equal(gx, [1.0, -2.0, 3.0])
        assert guard.total_quarantines == 0

    def test_nan_quarantines_and_zeroes_in_place(self):
        guard = NumericalGuard(log=False)
        gx = np.array([1.0, np.nan, 3.0])
        gy = np.array([0.5, 0.0, np.inf])
        assert not guard.check_term("timing", 7, gx, gy)
        np.testing.assert_array_equal(gx, 0.0)
        np.testing.assert_array_equal(gy, 0.0)
        assert guard.quarantine_counts["timing"] == 1
        assert guard.nonfinite_entries == 2

    def test_counts_are_per_term(self):
        guard = NumericalGuard(log=False)
        bad = np.array([np.nan])
        guard.check_term("timing", 0, bad.copy())
        guard.check_term("timing", 1, bad.copy())
        guard.check_term("density", 1, bad.copy())
        assert guard.summary() == {"timing": 2, "density": 1}
        assert guard.total_quarantines == 3

    def test_consecutive_resets_on_healthy_iteration(self):
        guard = NumericalGuard(log=False)
        bad = np.array([np.nan])
        ok = np.array([1.0])
        guard.check_term("timing", 0, bad.copy())
        guard.check_term("timing", 1, bad.copy())
        assert guard.worst_consecutive() == 2
        guard.check_term("timing", 2, ok.copy())
        assert guard.worst_consecutive() == 0

    def test_reset_consecutive_keeps_totals(self):
        guard = NumericalGuard(log=False)
        bad = np.array([np.nan])
        guard.check_term("timing", 0, bad.copy())
        guard.reset_consecutive()
        assert guard.worst_consecutive() == 0
        assert guard.quarantine_counts["timing"] == 1


class TestExceptionsAndScrub:
    def test_record_exception_counts_and_escalates(self):
        guard = NumericalGuard(log=False)
        guard.record_exception("timing", 3, RuntimeError("boom"))
        assert guard.exception_counts["timing"] == 1
        assert guard.worst_consecutive() == 1
        assert guard.summary() == {"timing": 1, "timing_exceptions": 1}

    def test_scrub_replaces_only_offending_entries(self):
        guard = NumericalGuard(log=False)
        grad = np.array([1.0, np.nan, -2.0, np.inf])
        n = guard.scrub("combined", 0, grad)
        assert n == 2
        np.testing.assert_array_equal(grad, [1.0, 0.0, -2.0, 0.0])

    def test_scrub_clean_is_free(self):
        guard = NumericalGuard(log=False)
        grad = np.array([1.0, -2.0])
        assert guard.scrub("combined", 0, grad) == 0
        assert guard.total_quarantines == 0


class TestStateRoundTrip:
    def test_get_set_state(self):
        guard = NumericalGuard(log=False)
        bad = np.array([np.nan])
        guard.check_term("timing", 0, bad.copy())
        guard.record_exception("density", 1, ValueError("x"))
        state = guard.get_state()

        other = NumericalGuard(log=False)
        other.set_state(state)
        assert other.quarantine_counts == guard.quarantine_counts
        assert other.exception_counts == guard.exception_counts
        assert other.consecutive == guard.consecutive
        assert other.nonfinite_entries == guard.nonfinite_entries

    def test_set_state_empty_is_noop(self):
        guard = NumericalGuard(log=False)
        guard.set_state({})
        guard.set_state(None)
        assert guard.total_quarantines == 0
