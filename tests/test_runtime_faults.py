"""Fault-injection tests: the recovery paths demonstrably fire.

The acceptance scenarios of the guarded runtime:

- a seeded NaN injected into the timing gradient mid-run is detected,
  quarantined and logged, and the run still converges to the same stop
  reason with final HPWL within 2% of the fault-free run;
- a divergence event (exploding iterate) triggers rollback to the best
  checkpoint and the run recovers;
- faults are inert outside armed placer runs, so unit tests of the timer
  kernels are unaffected by a process-wide ``REPRO_INJECT_FAULT``.
"""

import numpy as np
import pytest

from repro.harness import load_design
from repro.netlist import GeneratorSpec, generate_design
from repro.place.placer import GlobalPlacer, PlacerOptions
from repro.runtime import (
    FaultInjectionError,
    FaultInjector,
    FaultSpec,
    ProcessFaultSpec,
    maybe_inject_process_fault,
)
from repro.runtime.faults import armed, current_injector


class TestFaultSpec:
    def test_parse_full(self):
        spec = FaultSpec.parse("grad_nan:density@7")
        assert spec.kind == "grad_nan"
        assert spec.term == "density"
        assert spec.iteration == 7

    def test_parse_defaults(self):
        spec = FaultSpec.parse("lut_corrupt")
        assert spec.kind == "lut_corrupt"
        assert spec.iteration == 10

    def test_parse_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec.parse("segfault@3")

    def test_parse_rejects_unknown_term(self):
        with pytest.raises(ValueError, match="unknown gradient term"):
            FaultSpec.parse("grad_nan:voltage@3")

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_INJECT_FAULT", "timer_exc@4")
        spec = FaultSpec.from_env()
        assert spec.kind == "timer_exc" and spec.iteration == 4
        monkeypatch.setenv("REPRO_INJECT_FAULT", "off")
        assert FaultSpec.from_env() is None
        monkeypatch.delenv("REPRO_INJECT_FAULT", raising=False)
        assert FaultSpec.from_env() is None


class TestInjectorMechanics:
    def test_fires_exactly_once(self):
        inj = FaultInjector(FaultSpec(kind="grad_nan", term="timing", iteration=3))
        gx, gy = np.ones(32), np.ones(32)
        inj.begin_iteration(2)
        assert not inj.corrupt_grad("timing", gx, gy)
        inj.begin_iteration(3)
        assert inj.corrupt_grad("timing", gx, gy)
        assert np.isnan(gx).any()
        gx2, gy2 = np.ones(32), np.ones(32)
        inj.begin_iteration(4)
        assert not inj.corrupt_grad("timing", gx2, gy2)
        assert np.isfinite(gx2).all()
        assert inj.fired_iteration == 3
        assert len(inj.log) == 1

    def test_wrong_term_does_not_fire(self):
        inj = FaultInjector(FaultSpec(kind="grad_nan", term="density", iteration=0))
        gx, gy = np.ones(8), np.ones(8)
        inj.begin_iteration(5)
        assert not inj.corrupt_grad("timing", gx, gy)
        assert not inj.fired

    def test_inert_injector_is_noop(self):
        inj = FaultInjector(None)
        assert not inj.active
        gx, gy = np.ones(8), np.ones(8)
        inj.begin_iteration(0)
        assert not inj.corrupt_grad("timing", gx, gy)
        inj.maybe_raise("anywhere")  # must not raise

    def test_fired_state_round_trips(self):
        inj = FaultInjector(FaultSpec(kind="timer_exc", iteration=1))
        inj.begin_iteration(1)
        with pytest.raises(FaultInjectionError):
            inj.maybe_raise("test")
        other = FaultInjector(FaultSpec(kind="timer_exc", iteration=1))
        other.set_state(inj.get_state())
        other.begin_iteration(2)
        other.maybe_raise("test")  # already fired -> no raise

    def test_armed_scope(self):
        inj = FaultInjector(FaultSpec(kind="grad_nan"))
        assert current_injector() is None
        with armed(inj):
            assert current_injector() is inj
        assert current_injector() is None

    def test_lut_corruption_is_transient(self, chain_design):
        from repro.sta.graph import TimingGraph

        graph = TimingGraph(chain_design)
        original = graph.lutbank.values.copy()
        inj = FaultInjector(FaultSpec(kind="lut_corrupt", iteration=0))
        inj.begin_iteration(0)
        assert inj.corrupt_lutbank(graph.lutbank)
        assert np.isnan(graph.lutbank.values).any()
        inj.begin_iteration(1)  # transient: restored at the next iteration
        np.testing.assert_array_equal(graph.lutbank.values, original)

    def test_env_fault_ignored_outside_armed_run(self, monkeypatch, chain_design):
        """A process-wide REPRO_INJECT_FAULT must not perturb direct timer
        use - faults only fire inside armed placer runs."""
        from repro.core.difftimer import DifferentiableTimer

        monkeypatch.setenv("REPRO_INJECT_FAULT", "lut_corrupt@0")
        timer = DifferentiableTimer(chain_design)
        tape = timer.forward()
        gx, gy = timer.backward(tape, d_tns=-1.0)
        assert np.isfinite(tape.tns)
        assert np.isfinite(gx).all() and np.isfinite(gy).all()


def _timing_run(design, **placer_kwargs):
    from repro.core.objective import TimingObjectiveOptions
    from repro.core.timing_placer import TimingDrivenPlacer, TimingPlacerOptions

    return TimingDrivenPlacer(
        design,
        TimingPlacerOptions(
            placer=PlacerOptions(max_iters=25, min_iters=5, seed=0, **placer_kwargs),
            timing=TimingObjectiveOptions(start_iteration=5),
            sta_in_trace=False,
        ),
    )


class TestInjectedRuns:
    """End-to-end: injected faults are quarantined and runs still converge."""

    @pytest.fixture(scope="class")
    def design(self):
        return load_design("miniblue1")

    @pytest.fixture(scope="class")
    def clean(self, design):
        return _timing_run(design).run()

    def test_nan_in_timing_grad_quarantined_and_converges(
        self, design, clean, monkeypatch
    ):
        """The headline acceptance scenario: grad_nan:timing@10."""
        monkeypatch.setenv("REPRO_INJECT_FAULT", "grad_nan:timing@10")
        faulted = _timing_run(design).run()
        # Detected, quarantined, and logged - not silently scrubbed.
        assert faulted.nonfinite_events.get("timing", 0) >= 1
        assert faulted.quarantined_iterations >= 1
        assert any("NaN" in line for line in faulted.fault_log)
        # The run survives: same stop reason, HPWL within 2%.
        assert faulted.stop_reason == clean.stop_reason
        assert abs(faulted.hpwl - clean.hpwl) <= 0.02 * clean.hpwl

    def test_timer_exception_quarantined(self, design, clean, monkeypatch):
        monkeypatch.setenv("REPRO_INJECT_FAULT", "timer_exc@12")
        faulted = _timing_run(design).run()
        assert faulted.nonfinite_events.get("timing_exceptions", 0) == 1
        assert faulted.stop_reason == clean.stop_reason
        assert abs(faulted.hpwl - clean.hpwl) <= 0.02 * clean.hpwl

    def test_lut_corruption_quarantined(self, design, clean, monkeypatch):
        monkeypatch.setenv("REPRO_INJECT_FAULT", "lut_corrupt@8")
        faulted = _timing_run(design).run()
        assert faulted.nonfinite_events.get("timing", 0) >= 1
        assert faulted.stop_reason == clean.stop_reason
        assert abs(faulted.hpwl - clean.hpwl) <= 0.02 * clean.hpwl

    def test_density_grad_nan_at_iteration_zero(self, design, monkeypatch):
        """Quarantining density at iteration 0 must not blow up the
        lambda initialisation (it is deferred to the first healthy
        iteration)."""
        monkeypatch.setenv("REPRO_INJECT_FAULT", "grad_nan:density@0")
        result = GlobalPlacer(
            design, PlacerOptions(max_iters=15, min_iters=5, seed=0)
        ).run()
        assert result.nonfinite_events.get("density", 0) >= 1
        assert np.isfinite(result.hpwl)
        _, lams = result.series("lambda")
        assert np.isfinite(lams).all()


class TestDivergenceRollback:
    def test_exploding_iterate_rolls_back_to_best_checkpoint(self, tmp_path):
        """Once overflow is low, a one-off exploding gradient must trigger
        the divergence branch, which rolls back to the best checkpoint
        and recovers instead of bailing out with stop_reason='diverged'."""
        design = generate_design(
            GeneratorSpec(name="rollback", n_cells=220, depth=8, seed=99)
        )
        bomb = {"armed": True}

        def explode(iteration, x, y):
            if bomb["armed"] and iteration == 210:
                bomb["armed"] = False
                huge = np.full(design.n_cells, 1e9)
                return huge, huge, {}
            return None

        opts = PlacerOptions(
            max_iters=400, min_iters=10, seed=0,
            checkpoint_every=25, checkpoint_dir=str(tmp_path),
        )
        placer = GlobalPlacer(design, opts, extra_grad_fn=explode)
        # Pin an inert injector so a process-wide REPRO_INJECT_FAULT (the
        # CI fault matrix) cannot quarantine the deliberate explosion.
        placer.fault_injector = FaultInjector(None)
        result = placer.run()
        assert result.recoveries >= 1
        assert result.stop_reason != "diverged"
        assert result.stop_reason == "overflow"
        assert result.overflow < 0.4  # genuinely recovered and re-spread

    def test_without_checkpoints_divergence_still_bails_safely(self):
        """Legacy behaviour preserved when checkpointing is off: the run
        stops with the best iterate instead of the exploded one."""
        design = generate_design(
            GeneratorSpec(name="rollback2", n_cells=220, depth=8, seed=99)
        )
        bomb = {"armed": True}

        def explode(iteration, x, y):
            if bomb["armed"] and iteration == 210:
                bomb["armed"] = False
                huge = np.full(design.n_cells, 1e9)
                return huge, huge, {}
            return None

        opts = PlacerOptions(max_iters=400, min_iters=10, seed=0)
        placer = GlobalPlacer(design, opts, extra_grad_fn=explode)
        placer.fault_injector = FaultInjector(None)
        result = placer.run()
        assert result.stop_reason == "diverged"
        assert np.isfinite(result.hpwl)

    def test_persistent_fault_escalates_through_retries(self, tmp_path):
        """A fault that never clears walks the whole ladder: quarantine ->
        step-shrink retries -> checkpoint rollback -> degraded but finite
        completion."""
        design = generate_design(
            GeneratorSpec(name="persist", n_cells=150, depth=6, seed=7)
        )

        def poison(iteration, x, y):
            if iteration >= 30:
                bad = np.full(design.n_cells, np.nan)
                return bad, bad, {}
            return None

        opts = PlacerOptions(
            max_iters=60, min_iters=5, seed=0,
            checkpoint_every=10, checkpoint_dir=str(tmp_path),
            guard_retry_limit=3, max_recoveries=2,
        )
        result = GlobalPlacer(design, opts, extra_grad_fn=poison).run()
        assert result.recoveries >= 1
        assert result.nonfinite_events.get("timing", 0) >= 3
        assert np.isfinite(result.hpwl)
        assert np.isfinite(result.x).all() and np.isfinite(result.y).all()


def test_resumed_run_does_not_refire_taken_fault(tmp_path, monkeypatch):
    """The fired flag rides in checkpoints: resuming after the fault was
    taken replays the faulted run bit for bit instead of injecting again."""
    design = load_design("miniblue1")
    monkeypatch.setenv("REPRO_INJECT_FAULT", "grad_nan:wirelength@12")

    opts = dict(max_iters=30, min_iters=5, seed=0)
    full = GlobalPlacer(
        design,
        PlacerOptions(checkpoint_every=10, checkpoint_dir=str(tmp_path), **opts),
    ).run()
    assert full.nonfinite_events.get("wirelength", 0) == 1

    import glob

    checkpoint = glob.glob(str(tmp_path / "*iter000020*"))[0]
    resumed = GlobalPlacer(
        design, PlacerOptions(resume_from=checkpoint, **opts)
    ).run()
    # No second injection on the resumed leg (the guard counter equals the
    # original run's because it is *carried* in the checkpoint - the empty
    # fault log proves nothing new fired after the resume point)...
    assert resumed.nonfinite_events.get("wirelength", 0) == 1
    assert resumed.fault_log == []
    # ...and the trajectory matches the original faulted run exactly.
    it_full, hp_full = full.series("hpwl")
    np.testing.assert_array_equal(hp_full[it_full >= 20], resumed.series("hpwl")[1])
    np.testing.assert_array_equal(full.x, resumed.x)


class TestProcessFaultSpec:
    """The process-level fault family (supervised suite runner)."""

    def test_parse_full(self):
        spec = ProcessFaultSpec.parse("worker_hang:2@30")
        assert spec.kind == "worker_hang"
        assert spec.task_index == 2
        assert spec.hang_seconds == 30.0

    def test_parse_defaults(self):
        spec = ProcessFaultSpec.parse("worker_kill")
        assert spec.kind == "worker_kill" and spec.task_index == 0
        assert ProcessFaultSpec.parse("worker_hang").hang_seconds == 3600.0
        assert ProcessFaultSpec.parse("task_exc").poisoned_attempts == 1
        assert ProcessFaultSpec.parse("task_exc@3").poisoned_attempts == 3

    def test_parse_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown process fault kind"):
            ProcessFaultSpec.parse("grad_nan:timing@10")

    def test_env_families_do_not_cross(self, monkeypatch):
        # A process-level spec must be invisible to the in-process
        # family (guarded placer runs keep working under it) and vice
        # versa: both read the same REPRO_INJECT_FAULT variable.
        monkeypatch.setenv("REPRO_INJECT_FAULT", "worker_kill:1")
        assert FaultSpec.from_env() is None
        assert ProcessFaultSpec.from_env().kind == "worker_kill"
        monkeypatch.setenv("REPRO_INJECT_FAULT", "grad_nan:timing@10")
        assert ProcessFaultSpec.from_env() is None
        assert FaultSpec.from_env().kind == "grad_nan"
        monkeypatch.delenv("REPRO_INJECT_FAULT", raising=False)
        assert ProcessFaultSpec.from_env() is None

    def test_parent_process_never_killed(self, monkeypatch):
        # worker_kill/worker_hang must be inert outside spawned workers:
        # firing them in-process would kill or stall pytest itself.
        monkeypatch.setenv("REPRO_INJECT_FAULT", "worker_kill:0")
        maybe_inject_process_fault(0, 1, in_worker=False)
        monkeypatch.setenv("REPRO_INJECT_FAULT", "worker_hang:0@60")
        maybe_inject_process_fault(0, 1, in_worker=False)

    def test_task_exc_poisons_counted_attempts(self, monkeypatch):
        monkeypatch.setenv("REPRO_INJECT_FAULT", "task_exc:3@2")
        maybe_inject_process_fault(0, 1, in_worker=False)  # other task
        with pytest.raises(FaultInjectionError):
            maybe_inject_process_fault(3, 1, in_worker=False)
        with pytest.raises(FaultInjectionError):
            maybe_inject_process_fault(3, 2, in_worker=False)
        maybe_inject_process_fault(3, 3, in_worker=False)  # healed
