"""Unit tests for NLDM lookup tables (interpolation + gradients)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.lut import LUT


def make_bilinear(a, b, c, d):
    """A LUT sampled from the exactly-bilinear f(x, y) = a+bx+cy+dxy."""
    x = np.array([1.0, 4.0, 9.0])
    y = np.array([0.5, 2.0, 8.0])
    values = a + b * x[:, None] + c * y[None, :] + d * x[:, None] * y[None, :]
    return LUT(x, y, values), lambda q, r: a + b * q + c * r + d * q * r


class TestLookupValues:
    def test_exact_at_grid_points(self):
        lut, f = make_bilinear(1.0, 2.0, -0.5, 0.25)
        for xv in lut.x:
            for yv in lut.y:
                assert lut.lookup(xv, yv) == pytest.approx(f(xv, yv))

    def test_interior_interpolation_is_exact_for_bilinear(self):
        lut, f = make_bilinear(0.3, -1.0, 2.0, 0.1)
        assert lut.lookup(2.5, 1.0) == pytest.approx(f(2.5, 1.0))
        assert lut.lookup(6.0, 5.0) == pytest.approx(f(6.0, 5.0))

    def test_extrapolation_is_linear(self):
        lut, f = make_bilinear(0.0, 1.5, 0.7, 0.0)
        # d == 0 means f is affine, so extrapolation is also exact.
        assert lut.lookup(20.0, 0.1) == pytest.approx(f(20.0, 0.1))
        assert lut.lookup(-3.0, 12.0) == pytest.approx(f(-3.0, 12.0))

    def test_broadcasting(self):
        lut, f = make_bilinear(1.0, 1.0, 1.0, 0.0)
        xs = np.array([1.0, 2.0, 3.0])
        out = lut.lookup(xs, 1.0)
        assert out.shape == (3,)
        np.testing.assert_allclose(out, [f(v, 1.0) for v in xs])

    def test_constant_lut(self):
        lut = LUT.constant(42.0)
        assert lut.lookup(123.0, -7.0) == pytest.approx(42.0)
        v, dx, dy = lut.lookup_with_grad(np.array([5.0]), np.array([5.0]))
        assert dx[0] == 0.0 and dy[0] == 0.0

    def test_single_row_lut_interpolates_along_y(self):
        lut = LUT(np.array([0.0]), np.array([0.0, 10.0]), np.array([[0.0, 5.0]]))
        assert lut.lookup(99.0, 5.0) == pytest.approx(2.5)

    def test_single_column_lut_interpolates_along_x(self):
        lut = LUT(np.array([0.0, 10.0]), np.array([0.0]), np.array([[0.0], [5.0]]))
        assert lut.lookup(4.0, 99.0) == pytest.approx(2.0)


class TestLookupGradients:
    def test_gradient_matches_finite_difference(self):
        lut, _ = make_bilinear(1.0, 2.0, -0.5, 0.3)
        rng = np.random.default_rng(0)
        for _ in range(50):
            q = rng.uniform(1.1, 8.9)
            r = rng.uniform(0.6, 7.9)
            _, dx, dy = lut.lookup_with_grad(q, r)
            eps = 1e-6
            fd_x = (lut.lookup(q + eps, r) - lut.lookup(q - eps, r)) / (2 * eps)
            fd_y = (lut.lookup(q, r + eps) - lut.lookup(q, r - eps)) / (2 * eps)
            assert dx == pytest.approx(fd_x, rel=1e-6, abs=1e-9)
            assert dy == pytest.approx(fd_y, rel=1e-6, abs=1e-9)

    def test_gradient_of_bilinear_is_exact(self):
        a, b, c, d = 0.5, 1.5, -2.0, 0.4
        lut, _ = make_bilinear(a, b, c, d)
        q, r = 2.0, 1.0
        _, dx, dy = lut.lookup_with_grad(q, r)
        assert dx == pytest.approx(b + d * r)
        assert dy == pytest.approx(c + d * q)


class TestValidation:
    def test_non_increasing_axis_rejected(self):
        with pytest.raises(ValueError):
            LUT(np.array([1.0, 1.0]), np.array([0.0, 1.0]), np.zeros((2, 2)))
        with pytest.raises(ValueError):
            LUT(np.array([0.0, 1.0]), np.array([2.0, 1.0]), np.zeros((2, 2)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LUT(np.array([0.0, 1.0]), np.array([0.0, 1.0]), np.zeros((3, 2)))

    def test_equality(self):
        lut1, _ = make_bilinear(1.0, 2.0, 3.0, 0.0)
        lut2, _ = make_bilinear(1.0, 2.0, 3.0, 0.0)
        lut3, _ = make_bilinear(1.0, 2.0, 3.0, 0.5)
        assert lut1 == lut2
        assert lut1 != lut3

    def test_repr_mentions_shape(self):
        lut, _ = make_bilinear(0, 1, 1, 0)
        assert "3, 3" in repr(lut) or "(3, 3)" in repr(lut)


@settings(max_examples=60, deadline=None)
@given(
    q=st.floats(min_value=-5.0, max_value=20.0),
    r=st.floats(min_value=-5.0, max_value=20.0),
)
def test_in_range_queries_bounded_by_cell_corners(q, r):
    """Inside the table, bilinear interpolation never over/undershoots."""
    rng = np.random.default_rng(3)
    x = np.array([0.0, 3.0, 7.0, 11.0])
    y = np.array([0.0, 2.0, 5.0, 9.0])
    values = rng.uniform(-10, 10, (4, 4))
    lut = LUT(x, y, values)
    if x[0] <= q <= x[-1] and y[0] <= r <= y[-1]:
        out = lut.lookup(q, r)
        assert values.min() - 1e-9 <= out <= values.max() + 1e-9
