"""Unit tests for legalization and greedy refinement."""

import numpy as np
import pytest

from repro.place import (
    GlobalPlacer,
    PlacerOptions,
    greedy_refine,
    hpwl,
    legalize,
    max_overlap,
)
from repro.place.legalize import _abacus_row


@pytest.fixture(scope="module")
def global_placement(small_design):
    result = GlobalPlacer(small_design, PlacerOptions(max_iters=300)).run()
    return result.x, result.y


class TestAbacusRow:
    def test_non_overlapping_input_untouched(self):
        desired = np.array([0.0, 10.0, 20.0])
        widths = np.array([2.0, 2.0, 2.0])
        out = _abacus_row(desired, widths, 0.0, 100.0)
        np.testing.assert_allclose(out, desired)

    def test_overlap_resolved_at_optimal_mean(self):
        # Two cells wanting the same spot: optimal split is symmetric.
        desired = np.array([10.0, 10.0])
        widths = np.array([4.0, 4.0])
        out = _abacus_row(desired, widths, 0.0, 100.0)
        assert out[1] - out[0] == pytest.approx(4.0)
        assert 0.5 * (out[0] + out[1]) == pytest.approx(10.0)

    def test_boundary_clamping(self):
        desired = np.array([-10.0, 95.0])
        widths = np.array([4.0, 10.0])
        out = _abacus_row(desired, widths, 0.0, 100.0)
        assert out[0] >= 0.0
        assert out[1] + 10.0 <= 100.0 + 1e-9

    def test_chain_merge(self):
        desired = np.array([0.0, 1.0, 2.0, 3.0])
        widths = np.array([3.0, 3.0, 3.0, 3.0])
        out = _abacus_row(desired, widths, 0.0, 100.0)
        gaps = np.diff(out)
        assert (gaps >= 3.0 - 1e-9).all()
        # Unconstrained optimum (mean of desired - offsets) is -3.0, but
        # the row floor clamps the cluster to start at 0.
        assert out[0] == pytest.approx(0.0)
        # Without the floor, the optimum is indeed the cluster-target mean.
        offsets = np.array([0.0, 3.0, 6.0, 9.0])
        out2 = _abacus_row(desired, widths, -50.0, 100.0)
        assert out2[0] == pytest.approx(np.mean(desired - offsets))


class TestLegalize:
    def test_no_overlaps(self, small_design, global_placement):
        x, y = global_placement
        lx, ly = legalize(small_design, x, y)
        assert max_overlap(small_design, lx, ly) == pytest.approx(0.0, abs=1e-9)

    def test_cells_in_rows(self, small_design, global_placement):
        x, y = global_placement
        lx, ly = legalize(small_design, x, y)
        yl = small_design.die[1]
        movable = ~small_design.cell_fixed
        offsets = (ly[movable] - yl) / small_design.row_height - 0.5
        np.testing.assert_allclose(offsets, np.round(offsets), atol=1e-9)

    def test_cells_inside_die(self, small_design, global_placement):
        x, y = global_placement
        lx, ly = legalize(small_design, x, y)
        xl, yl, xh, yh = small_design.die
        movable = ~small_design.cell_fixed
        w = small_design.cell_w[movable]
        assert (lx[movable] - 0.5 * w >= xl - 1e-9).all()
        assert (lx[movable] + 0.5 * w <= xh + 1e-9).all()

    def test_fixed_cells_untouched(self, small_design, global_placement):
        x, y = global_placement
        lx, ly = legalize(small_design, x, y)
        fixed = small_design.cell_fixed
        np.testing.assert_allclose(lx[fixed], x[fixed])
        np.testing.assert_allclose(ly[fixed], y[fixed])

    def test_displacement_reasonable(self, small_design, global_placement):
        x, y = global_placement
        lx, ly = legalize(small_design, x, y)
        movable = ~small_design.cell_fixed
        disp = np.abs(lx - x)[movable] + np.abs(ly - y)[movable]
        xl, yl, xh, yh = small_design.die
        assert disp.mean() < 0.15 * ((xh - xl) + (yh - yl))

    def test_hpwl_not_destroyed(self, small_design, global_placement):
        x, y = global_placement
        lx, ly = legalize(small_design, x, y)
        assert hpwl(small_design, lx, ly) < 1.5 * hpwl(small_design, x, y)

    def test_clustered_input_still_legalizes(self, small_design):
        d = small_design
        xl, yl, xh, yh = d.die
        x = np.full(d.n_cells, 0.5 * (xl + xh))
        y = np.full(d.n_cells, 0.5 * (yl + yh))
        lx, ly = legalize(d, x, y)
        assert max_overlap(d, lx, ly) == pytest.approx(0.0, abs=1e-9)


class TestGreedyRefine:
    def test_refinement_never_hurts(self, small_design, global_placement):
        x, y = global_placement
        lx, ly = legalize(small_design, x, y)
        rx, ry = greedy_refine(small_design, lx, ly, passes=1)
        assert hpwl(small_design, rx, ry) <= hpwl(small_design, lx, ly) + 1e-9
        assert max_overlap(small_design, rx, ry) == pytest.approx(0.0, abs=1e-9)

    def test_idempotent_when_converged(self, small_design, global_placement):
        x, y = global_placement
        lx, ly = legalize(small_design, x, y)
        r1 = greedy_refine(small_design, lx, ly, passes=3)
        r2 = greedy_refine(small_design, r1[0], r1[1], passes=1)
        assert hpwl(small_design, *r2) == pytest.approx(
            hpwl(small_design, *r1), rel=1e-9
        )
