"""reprolint v2 engine: semantic index, whole-program rules, cache, CLI.

The four whole-program families each get a seeded counterexample proving
they fire (plus the clean variants proving they don't over-fire), every
new rule id gets a baseline round-trip and an inline-suppression test,
and the incremental cache is proven byte-identical to a cold run on both
the full-hit (nothing parsed) and partial-hit (one file changed) paths.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import RULES_VERSION, run_analysis
from repro.analysis.baseline import BASELINE_FILENAME
from repro.analysis.cache import ResultCache, hash_file, project_signature
from repro.analysis.cli import main as cli_main
from repro.analysis.core import Analyzer, ProjectIndex

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_EVENTS_FIXTURE = 'EVENT_KINDS = ("alpha", "beta", "gamma_ray")\n'


def make_repo(tmp_path, files):
    defaults = {"src/repro/telemetry/events.py": _EVENTS_FIXTURE}
    defaults.update(files)
    for rel, content in defaults.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
    return str(tmp_path)


def findings_of(report, rule):
    return [f for f in report.new_findings if f.rule == rule]


# ----------------------------------------------------------------------
# Seeded counterexamples, one dict per rule family.  Each is also reused
# by the baseline/suppression parametrisation below.
# ----------------------------------------------------------------------
_DTYPE_FLOW_FILES = {
    # dtype-flow only polices the real kernel module paths.
    "src/repro/place/density.py": (
        "from repro.core.backend import xp\n"
        "def fresh_no_dtype(n):\n"
        "    return xp.zeros(n)\n"
        "def promote(v):\n"
        "    return v.astype(xp.float64)\n"
        "def literal_content():\n"
        "    return xp.asarray([1.0, 2.0])\n"
        "def bad_default(scale=xp.float64):\n"
        "    return scale\n"
        "def sanitised(n, dtype):\n"
        "    m = xp.zeros(n)\n"
        "    m = m.astype(dtype)\n"
        "    return m\n"
        "def explicit(n):\n"
        "    return xp.zeros(n, dtype=xp.float64)\n"
        "class Model:\n"
        "    def __init__(self):\n"
        "        self.table = xp.zeros(4)\n"
    ),
}

_SPAWN_SAFETY_FILES = {
    "src/repro/work.py": (
        "import multiprocessing\n"
        "_STATE = {}\n"
        "_COUNT = 0\n"
        "def _helper():\n"
        "    global _COUNT\n"
        "    _COUNT = 1\n"
        "def _worker(payload):\n"
        "    _STATE['k'] = payload\n"
        "    _helper()\n"
        "def launch():\n"
        "    ctx = multiprocessing.get_context('spawn')\n"
        "    p = ctx.Process(target=_worker, args=(1,))\n"
        "    p.start()\n"
        "def not_reachable():\n"
        "    _STATE['fine'] = 1\n"
    ),
}

_DETERMINISM_FILES = {
    "src/repro/mod.py": (
        "import time\n"
        "def record(rec):\n"
        "    rec.event('alpha', value=time.time())\n"
        "    rec.event('beta', ts=time.time())\n"
        "    t0 = time.time()\n"
        "    rec.event('gamma_ray', value=t0)\n"
        "    rec.event('alpha', value=sorted({1, 2}))\n"
        "    rec.event('beta', value=list({1, 2}))\n"
    ),
}

_CONTRACT_FILES = {
    "src/repro/core/kern.py": (
        "from repro.contracts import differentiable\n"
        '@differentiable(backward="repro.core.kern.foo_backward", '
        'gradcheck="tests/test_kern.py::test_something")\n'
        "def foo_forward_level(x):\n"
        "    return x\n"
        "def foo_backward(x):\n"
        "    return x\n"
    ),
    # The gradcheck resolves but never references the kernel: orphaned.
    "tests/test_kern.py": "def test_something():\n    assert True\n",
}

_FAMILY_FIXTURES = {
    "dtype-flow": (_DTYPE_FLOW_FILES, 4),
    "spawn-safety": (_SPAWN_SAFETY_FILES, 2),
    "determinism-taint": (_DETERMINISM_FILES, 3),
    "contract-closure": (_CONTRACT_FILES, 1),
}


# ----------------------------------------------------------------------
class TestDtypeFlow:
    def test_counterexamples_flagged_and_clean_variants_pass(self, tmp_path):
        root = make_repo(tmp_path, _DTYPE_FLOW_FILES)
        found = findings_of(run_analysis(root), "dtype-flow")
        assert len(found) == 4
        messages = " ".join(f.message for f in found)
        assert "fresh_no_dtype" in messages  # implicit allocation
        assert ".astype(float64)" in messages  # explicit promotion
        assert "float-literal content" in messages  # asarray of floats
        assert "defaults a parameter to float64" in messages
        # The sanitised / explicit-dtype / __init__ sites never appear
        # (each message embeds its function as "name()").
        assert "sanitised()" not in messages
        assert "explicit()" not in messages
        assert "__init__()" not in messages

    def test_only_kernel_modules_are_policed(self, tmp_path):
        files = {
            "src/repro/other.py": _DTYPE_FLOW_FILES[
                "src/repro/place/density.py"
            ]
        }
        root = make_repo(tmp_path, files)
        assert findings_of(run_analysis(root), "dtype-flow") == []

    def test_real_kernels_fixed(self):
        """The density/wirelength/smoothing allocations found by the
        first v2 run carry explicit dtypes now."""
        report = run_analysis(REPO_ROOT)
        assert findings_of(report, "dtype-flow") == []


class TestSpawnSafety:
    def test_writes_on_worker_closure_flagged(self, tmp_path):
        root = make_repo(tmp_path, _SPAWN_SAFETY_FILES)
        found = findings_of(run_analysis(root), "spawn-safety")
        assert len(found) == 2
        messages = " ".join(f.message for f in found)
        # Both the entrypoint's own write and the one reached through
        # the call graph are caught; the unreachable function is not.
        assert "_STATE" in messages and "_COUNT" in messages
        assert "not_reachable" not in messages

    def test_allowlisted_global_is_accepted(self, tmp_path):
        files = {
            "src/repro/telemetry/resources.py": (
                "_PAGE_SIZE = None\n"
                "def _worker():\n"
                "    global _PAGE_SIZE\n"
                "    _PAGE_SIZE = 4096\n"
                "def launch():\n"
                "    import multiprocessing\n"
                "    multiprocessing.Process(target=_worker).start()\n"
            ),
        }
        root = make_repo(tmp_path, files)
        assert findings_of(run_analysis(root), "spawn-safety") == []

    def test_imported_module_calls_are_not_state_writes(self, tmp_path):
        # Regression: os.remove() is not set.remove() on a global.
        files = {
            "src/repro/work.py": (
                "import os\n"
                "import multiprocessing\n"
                "def _worker(path):\n"
                "    os.remove(path)\n"
                "def launch():\n"
                "    multiprocessing.Process(target=_worker).start()\n"
            ),
        }
        root = make_repo(tmp_path, files)
        assert findings_of(run_analysis(root), "spawn-safety") == []


class TestDeterminismTaint:
    def test_clock_and_order_taint_reach_sinks(self, tmp_path):
        root = make_repo(tmp_path, _DETERMINISM_FILES)
        found = findings_of(run_analysis(root), "determinism-taint")
        assert len(found) == 3
        kinds = sorted(f.message.split("-tainted")[0] for f in found)
        assert kinds == ["clock", "clock", "order"]

    def test_exempt_wall_clock_fields_pass(self, tmp_path):
        files = {
            "src/repro/mod.py": (
                "import time\n"
                "def record(rec):\n"
                "    t0 = time.time()\n"
                "    rec.event('alpha', ts=t0, runtime_s=time.time() - t0)\n"
            ),
        }
        root = make_repo(tmp_path, files)
        assert findings_of(run_analysis(root), "determinism-taint") == []

    def test_entropy_source_into_manifest_sink(self, tmp_path):
        files = {
            "src/repro/mod.py": (
                "import os\n"
                "from repro.telemetry.manifest import RunManifest\n"
                "def make():\n"
                "    token = os.urandom(8).hex()\n"
                "    return RunManifest(token)\n"
            ),
        }
        root = make_repo(tmp_path, files)
        found = findings_of(run_analysis(root), "determinism-taint")
        assert len(found) == 1
        assert "entropy-tainted" in found[0].message


class TestContractClosure:
    def test_resolvable_but_orphaned_gradcheck_flagged(self, tmp_path):
        root = make_repo(tmp_path, _CONTRACT_FILES)
        found = findings_of(run_analysis(root), "contract-closure")
        assert len(found) == 1
        assert "never references" in found[0].message

    def test_backward_resolved_through_import_alias(self, tmp_path):
        # The declared dotted path goes through a re-export; the index
        # must follow the alias instead of demanding the literal module.
        files = {
            "src/repro/core/kern.py": (
                "from repro.contracts import differentiable\n"
                '@differentiable(backward="repro.core.api.foo_backward", '
                'gradcheck="tests/test_kern.py::test_foo")\n'
                "def foo_forward_level(x):\n"
                "    return x\n"
                "def foo_backward(x):\n"
                "    return x\n"
            ),
            "src/repro/core/api.py": (
                "from repro.core.kern import foo_backward\n"
            ),
            "tests/test_kern.py": (
                "from repro.core.kern import foo_forward_level\n"
                "def test_foo():\n"
                "    assert foo_forward_level(0) == 0\n"
            ),
        }
        root = make_repo(tmp_path, files)
        assert findings_of(run_analysis(root), "contract-closure") == []


# ----------------------------------------------------------------------
class TestBaselineAndSuppressionPerFamily:
    @pytest.mark.parametrize("rule_id", sorted(_FAMILY_FIXTURES))
    def test_baseline_roundtrip(self, tmp_path, rule_id):
        files, expected = _FAMILY_FIXTURES[rule_id]
        root = make_repo(tmp_path, files)
        baseline_path = os.path.join(root, BASELINE_FILENAME)
        report = run_analysis(root)
        assert len(findings_of(report, rule_id)) == expected

        assert cli_main(["--root", root, "--write-baseline"]) == 0
        report = run_analysis(root, baseline_path=baseline_path)
        assert findings_of(report, rule_id) == []
        baselined = [
            f for f in report.baselined_findings if f.rule == rule_id
        ]
        assert len(baselined) == expected

    @pytest.mark.parametrize("rule_id", sorted(_FAMILY_FIXTURES))
    def test_inline_suppression(self, tmp_path, rule_id):
        files, expected = _FAMILY_FIXTURES[rule_id]
        root = make_repo(tmp_path, files)
        report = run_analysis(root)
        findings = findings_of(report, rule_id)
        assert len(findings) == expected

        # Append a suppression comment to every flagged line (all the
        # fixtures keep one statement per line).
        by_file = {}
        for f in findings:
            by_file.setdefault(f.path, set()).add(f.line)
        for rel, lines in by_file.items():
            path = os.path.join(root, rel)
            with open(path) as handle:
                text = handle.read().splitlines()
            for line in lines:
                text[line - 1] += (
                    f"  # reprolint: allow[{rule_id}] seeded counterexample"
                )
            with open(path, "w") as handle:
                handle.write("\n".join(text) + "\n")

        report = run_analysis(root)
        assert findings_of(report, rule_id) == []
        assert findings_of(report, "unused-suppression") == []
        assert report.suppressed_count >= len(by_file)


# ----------------------------------------------------------------------
_CACHE_FILES = {}
_CACHE_FILES.update(_DTYPE_FLOW_FILES)
_CACHE_FILES.update(_DETERMINISM_FILES)
_CACHE_FILES["src/repro/provider.py"] = (
    # A self-suppressing rule (checkpoint-completeness consumes its
    # suppressions during the check phase): the warm path must replay
    # the consumed marks or it would emit a spurious unused-suppression.
    "class Thing:\n"
    "    def get_state(self):\n"
    "        return {'a': self.a}\n"
    "    def set_state(self, s):\n"
    "        self.a = s['a']\n"
    "    def step(self):\n"
    "        self.a = 1\n"
    "        self.cache = 2  # reprolint: allow[checkpoint-completeness] rebuilt on resume\n"
)


class TestIncrementalCache:
    def _run(self, root, cache_path):
        analyzer = Analyzer(root, cache_path=cache_path)
        findings, n_files, suppressed = analyzer.run()
        return analyzer, [f.to_dict() for f in findings], n_files, suppressed

    def test_warm_full_hit_is_byte_identical_and_parses_nothing(
        self, tmp_path
    ):
        root = make_repo(tmp_path, _CACHE_FILES)
        cache_path = os.path.join(root, ".reprolint-cache.json")
        _, cold, n1, s1 = self._run(root, cache_path)
        assert cold  # the fixtures do produce findings
        warm_analyzer, warm, n2, s2 = self._run(root, cache_path)
        assert (warm, n2, s2) == (cold, n1, s1)
        # Full hit: the warm analyzer returned from hashes alone.
        assert warm_analyzer._index is None

    def test_partial_hit_matches_cold_rerun(self, tmp_path):
        root = make_repo(tmp_path, _CACHE_FILES)
        cache_path = os.path.join(root, ".reprolint-cache.json")
        self._run(root, cache_path)

        # Change one file: add a fresh finding to the determinism module.
        mod = tmp_path / "src/repro/mod.py"
        mod.write_text(
            mod.read_text() + "def extra(rec):\n"
            "    import time\n"
            "    rec.event('alpha', value=time.time())\n"
        )
        _, warm, n2, s2 = self._run(root, cache_path)
        cold_analyzer, cold, n3, s3 = self._run(
            root, os.path.join(root, ".cold-cache.json")
        )
        assert (warm, n2, s2) == (cold, n3, s3)

    def test_rules_version_change_invalidates(self, tmp_path):
        path = str(tmp_path / "c.json")
        cache = ResultCache(path)
        cache._rules_version = "2.0"
        cache.store("sig", {"findings": [], "files_checked": 1,
                            "suppressed": 0}, {})
        cache.write()
        assert ResultCache.load(path, "2.0").full_result("sig") is not None
        assert ResultCache.load(path, "2.1").full_result("sig") is None

    def test_corrupt_cache_degrades_to_cold(self, tmp_path):
        root = make_repo(tmp_path, _DETERMINISM_FILES)
        cache_path = os.path.join(root, ".reprolint-cache.json")
        with open(cache_path, "w") as handle:
            handle.write("{ not json")
        _, findings, _, _ = self._run(root, cache_path)
        assert findings  # analysis ran despite the corrupt cache

    def test_signature_covers_rules_files_and_targets(self, tmp_path):
        hashes = {"a.py": "h1", "b.py": "h2"}
        base = project_signature("2.0", ["r1"], hashes, ["a.py"])
        assert base == project_signature("2.0", ["r1"], hashes, ["a.py"])
        assert base != project_signature("2.1", ["r1"], hashes, ["a.py"])
        assert base != project_signature("2.0", ["r2"], hashes, ["a.py"])
        assert base != project_signature(
            "2.0", ["r1"], {"a.py": "h1", "b.py": "X"}, ["a.py"]
        )
        assert base != project_signature("2.0", ["r1"], hashes, ["b.py"])

    def test_hash_file_missing_is_none(self, tmp_path):
        assert hash_file(str(tmp_path / "nope.py")) is None


class TestParallelJobs:
    def test_jobs_fanout_matches_serial(self, tmp_path):
        root = make_repo(tmp_path, _CACHE_FILES)
        serial = run_analysis(root)
        parallel = run_analysis(root, jobs=2)
        assert [f.to_dict() for f in parallel.new_findings] == [
            f.to_dict() for f in serial.new_findings
        ]
        assert parallel.suppressed_count == serial.suppressed_count


# ----------------------------------------------------------------------
class TestSemanticIndexUnit:
    def _index(self, tmp_path, files):
        root = make_repo(tmp_path, files)
        return ProjectIndex.build(root).semantic

    def test_resolve_symbol_follows_aliases(self, tmp_path):
        sem = self._index(
            tmp_path,
            {
                "src/repro/core/impl.py": "def kernel(x):\n    return x\n",
                "src/repro/api.py": "from repro.core.impl import kernel\n",
            },
        )
        assert (
            sem.resolve_symbol("repro.api.kernel")
            == "repro.core.impl.kernel"
        )
        assert sem.resolve_symbol("repro.api.missing") is None

    def test_is_module_global_rejects_third_party_modules(self, tmp_path):
        sem = self._index(
            tmp_path,
            {"src/repro/mod.py": "import os\n_MEMO = {}\n"},
        )
        assert sem.is_module_global("repro.mod._MEMO")
        assert sem.is_module_global("repro.mod._MEMO.anything")
        assert not sem.is_module_global("os")
        assert not sem.is_module_global("os.remove")

    def test_spawn_entrypoints_and_closure(self, tmp_path):
        sem = self._index(tmp_path, _SPAWN_SAFETY_FILES)
        assert "repro.work._worker" in sem.spawn_entrypoints
        closure = sem.call_closure(sorted(sem.spawn_entrypoints))
        assert "repro.work._helper" in closure
        assert "repro.work.not_reachable" not in closure

    def test_shadowed_name_does_not_resolve(self, tmp_path):
        sem = self._index(
            tmp_path,
            {
                "src/repro/mod.py": (
                    "import numpy as np\n"
                    "def real():\n"
                    "    return np.zeros(3)\n"
                    "def shadowed(np):\n"
                    "    return np.zeros(3)\n"
                )
            },
        )
        resolver = sem.resolver("src/repro/mod.py")
        import ast as ast_mod

        mod = sem.modules["src/repro/mod.py"]
        real = mod.functions["real"].node
        shadowed = mod.functions["shadowed"].node
        def np_name(fn):
            for node in ast_mod.walk(fn):
                if isinstance(node, ast_mod.Name) and node.id == "np":
                    return node
        assert resolver.resolve(np_name(real)) == "numpy"
        assert resolver.resolve(np_name(shadowed)) is None


# ----------------------------------------------------------------------
class TestCliV2:
    def test_explain_known_rule(self, capsys):
        assert cli_main(["explain", "dtype-flow"]) == 0
        out = capsys.readouterr().out
        assert "dtype-flow" in out
        assert "float64" in out.lower()

    def test_explain_unknown_rule(self, capsys):
        assert cli_main(["explain", "no-such-rule"]) == 1
        err = capsys.readouterr().err
        assert "unknown rule" in err

    def test_explain_meta_rule(self, capsys):
        assert cli_main(["explain", "unused-suppression"]) == 0
        assert "meta" in capsys.readouterr().out

    def test_sarif_output(self, tmp_path):
        root = make_repo(tmp_path, _DETERMINISM_FILES)
        sarif_path = str(tmp_path / "out.sarif")
        code = cli_main(["--root", root, "--no-cache", "--sarif", sarif_path])
        assert code == 1  # findings exist
        with open(sarif_path) as handle:
            data = json.load(handle)
        assert data["version"] == "2.1.0"
        run = data["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        assert run["tool"]["driver"]["version"] == RULES_VERSION
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "determinism-taint" in rule_ids
        results = run["results"]
        assert len(results) == 3
        assert all(r["ruleId"] == "determinism-taint" for r in results)
        loc = results[0]["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/repro/mod.py"
        assert loc["region"]["startLine"] >= 1

    def test_changed_mode_lints_only_diffed_files(self, tmp_path, capsys):
        root = make_repo(
            tmp_path,
            {
                "src/repro/clean.py": "x = 1\n",
                **_DETERMINISM_FILES,
            },
        )

        def git(*args):
            subprocess.run(
                ["git", *args],
                cwd=root,
                check=True,
                capture_output=True,
                env={
                    **os.environ,
                    "GIT_AUTHOR_NAME": "t",
                    "GIT_AUTHOR_EMAIL": "t@t",
                    "GIT_COMMITTER_NAME": "t",
                    "GIT_COMMITTER_EMAIL": "t@t",
                },
            )

        git("init", "-q")
        git("add", "-A")
        git("commit", "-qm", "base")
        # Nothing changed: exits 0 without linting the dirty fixture.
        assert cli_main(["--root", root, "--changed", "HEAD"]) == 0
        assert "no files changed" in capsys.readouterr().out

        # Touch only the clean file: still exits 0, lints one file.
        (tmp_path / "src/repro/clean.py").write_text("x = 2\n")
        assert cli_main(["--root", root, "--changed", "HEAD"]) == 0
        assert "1 files" in capsys.readouterr().out

        # Touch the finding-bearing file too: now it fails.
        mod = tmp_path / "src/repro/mod.py"
        mod.write_text(mod.read_text() + "\n")
        assert cli_main(["--root", root, "--changed", "HEAD"]) == 1

    def test_module_entrypoint_runs_warm_cached(self, tmp_path):
        """Two back-to-back CLI runs on the real repo: the second must
        hit the cache (cache file written, same exit/stdout summary)."""
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        cache = str(tmp_path / "cache.json")
        # Point the cache at tmp via cwd-independent --root plus a
        # symlinked home: simplest is to run in a scratch copy of the
        # CLI invocation with the default cache path under REPO_ROOT;
        # use --no-cache=absent and tolerate an existing cache file.
        outs = []
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-m", "repro.analysis", "--root", REPO_ROOT],
                capture_output=True,
                text=True,
                env=env,
                cwd=REPO_ROOT,
                timeout=240,
            )
            assert proc.returncode == 0, proc.stdout + proc.stderr
            outs.append(proc.stdout.strip().splitlines()[-1])
        assert outs[0] == outs[1]
        assert os.path.exists(os.path.join(REPO_ROOT, ".reprolint-cache.json"))
