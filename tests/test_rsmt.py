"""Unit and property tests for rectilinear Steiner tree construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.route import build_rsmt, rmst_length
from repro.route.rsmt import _prim_edges, _prim_lengths_batch


def random_net(rng, n):
    x = rng.integers(0, 50, n).astype(float)
    y = rng.integers(0, 50, n).astype(float)
    return x, y


class TestSmallNets:
    def test_single_pin(self):
        t = build_rsmt(np.array([3.0]), np.array([4.0]), np.array([7]))
        assert t.n_nodes == 1
        assert t.wirelength() == 0.0
        t.validate()

    def test_two_pins(self):
        t = build_rsmt(
            np.array([0.0, 3.0]), np.array([0.0, 4.0]), np.array([0, 1]), 1
        )
        assert t.wirelength() == pytest.approx(7.0)
        assert t.root == 1
        t.validate()

    def test_three_pins_median_is_optimal(self):
        # L-shaped: median point at (1, 1); RSMT length = 4.
        x = np.array([0.0, 1.0, 2.0])
        y = np.array([0.0, 2.0, 1.0])
        t = build_rsmt(x, y, np.arange(3), 0)
        t.validate()
        assert t.wirelength() == pytest.approx(4.0)

    def test_three_collinear_pins_no_steiner(self):
        x = np.array([0.0, 5.0, 9.0])
        y = np.array([2.0, 2.0, 2.0])
        t = build_rsmt(x, y, np.arange(3), 2)
        t.validate()
        assert t.wirelength() == pytest.approx(9.0)
        # Median coincides with the middle pin: star topology, no Steiner.
        assert t.n_nodes == 3

    def test_cross_four_pins_finds_steiner(self):
        # The classic case where RSMT (4) beats RMST (6).
        x = np.array([0.0, 2.0, 1.0, 1.0])
        y = np.array([1.0, 1.0, 0.0, 2.0])
        t = build_rsmt(x, y, np.arange(4), 0)
        t.validate()
        assert t.wirelength() == pytest.approx(4.0)
        assert rmst_length(x, y) == pytest.approx(6.0)

    def test_coincident_pins(self):
        x = np.array([1.0, 1.0, 1.0])
        y = np.array([1.0, 1.0, 1.0])
        t = build_rsmt(x, y, np.arange(3), 0)
        t.validate()
        assert t.wirelength() == pytest.approx(0.0)

    def test_empty_net_rejected(self):
        with pytest.raises(ValueError):
            build_rsmt(np.array([]), np.array([]), np.array([], dtype=int))


class TestProperties:
    def test_random_nets_bounded_by_mst_and_hpwl(self):
        rng = np.random.default_rng(5)
        for _ in range(150):
            n = int(rng.integers(2, 13))
            x, y = random_net(rng, n)
            driver = int(rng.integers(0, n))
            t = build_rsmt(x, y, np.arange(n), driver)
            t.validate()
            wl = t.wirelength()
            assert wl <= rmst_length(x, y) + 1e-9
            half_perim = (x.max() - x.min()) + (y.max() - y.min())
            assert wl >= half_perim - 1e-9

    def test_root_is_driver(self):
        rng = np.random.default_rng(6)
        for _ in range(20):
            n = int(rng.integers(2, 10))
            x, y = random_net(rng, n)
            driver = int(rng.integers(0, n))
            t = build_rsmt(x, y, np.arange(n) + 100, driver)
            assert t.root == driver
            assert t.parent[t.root] == -1
            assert t.pins[t.root] == driver + 100

    def test_steiner_owners_coordinates_match(self):
        rng = np.random.default_rng(7)
        for _ in range(60):
            n = int(rng.integers(4, 12))
            x, y = random_net(rng, n)
            t = build_rsmt(x, y, np.arange(n), 0)
            for v in range(t.n_nodes):
                assert t.x[v] == t.x[t.owner_x[v]]
                assert t.y[v] == t.y[t.owner_y[v]]
                assert t.pins[t.owner_x[v]] >= 0
                assert t.pins[t.owner_y[v]] >= 0

    def test_large_net_uses_plain_mst(self):
        rng = np.random.default_rng(8)
        n = 40
        x, y = random_net(rng, n)
        t = build_rsmt(x, y, np.arange(n), 0, max_steiner_degree=24)
        t.validate()
        assert t.n_nodes == n  # no Steiner points
        assert t.wirelength() == pytest.approx(rmst_length(x, y))

    def test_steiner_count_bounded(self):
        rng = np.random.default_rng(9)
        for _ in range(30):
            n = int(rng.integers(4, 12))
            x, y = random_net(rng, n)
            t = build_rsmt(x, y, np.arange(n), 0)
            assert t.n_nodes - n <= n - 2


class TestPrimKernels:
    def test_prim_matches_known_mst(self):
        x = np.array([0.0, 1.0, 5.0])
        y = np.array([0.0, 0.0, 0.0])
        edges, total = _prim_edges(x, y)
        assert total == pytest.approx(5.0)
        assert len(edges) == 2

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=2, max_value=10), st.integers(min_value=0, max_value=10**6))
    def test_batched_prim_matches_scalar(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(0, 30, n)
        y = rng.uniform(0, 30, n)
        cx = rng.uniform(0, 30, 4)
        cy = rng.uniform(0, 30, 4)
        batch = _prim_lengths_batch(x, y, cx, cy)
        for k in range(4):
            _, scalar = _prim_edges(
                np.concatenate([x, [cx[k]]]), np.concatenate([y, [cy[k]]])
            )
            assert batch[k] == pytest.approx(scalar, rel=1e-12)


class TestDepthAndReroot:
    def test_depths_consistent_with_parents(self):
        rng = np.random.default_rng(10)
        x, y = random_net(rng, 8)
        t = build_rsmt(x, y, np.arange(8), 3)
        depth = t.depths()
        for v in range(t.n_nodes):
            if t.parent[v] >= 0:
                assert depth[v] == depth[t.parent[v]] + 1
            else:
                assert depth[v] == 0
