"""Shared fixtures: small deterministic designs and libraries."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.netlist import (
    Constraints,
    DesignBuilder,
    GeneratorSpec,
    default_library,
    generate_design,
    make_chain_design,
)


@pytest.fixture(scope="session", autouse=True)
def _isolated_design_cache(tmp_path_factory):
    """Point the design-bundle cache at a per-session temp directory.

    Keeps test runs from writing into ``benchmarks/.design_cache`` while
    still exercising the real cache code paths (spawned suite workers
    inherit the environment override).
    """
    path = tmp_path_factory.mktemp("design_cache")
    old = os.environ.get("REPRO_DESIGN_CACHE")
    os.environ["REPRO_DESIGN_CACHE"] = str(path)
    yield str(path)
    if old is None:
        os.environ.pop("REPRO_DESIGN_CACHE", None)
    else:
        os.environ["REPRO_DESIGN_CACHE"] = old


@pytest.fixture(scope="session")
def library():
    """The default synthetic standard-cell library."""
    return default_library()


@pytest.fixture(scope="session")
def chain_design():
    """A 4-stage inverter chain with a flip-flop endpoint."""
    return make_chain_design(4)


@pytest.fixture(scope="session")
def small_design():
    """A ~200-cell generated design (sequential, multi-level)."""
    return generate_design(GeneratorSpec(name="small", n_cells=150, depth=6, seed=7))


@pytest.fixture(scope="session")
def medium_design():
    """A ~500-cell generated design for integration tests."""
    return generate_design(GeneratorSpec(name="medium", n_cells=400, depth=10, seed=11))


@pytest.fixture()
def tiny_builder(library):
    """A fresh builder with one input, one output and a clock."""
    constraints = Constraints(clock_period=300.0, clock_port="clk")
    builder = DesignBuilder(
        "tiny", library, die=(0.0, 0.0, 40.0, 20.0), constraints=constraints
    )
    builder.add_input("clk", x=0.0, y=0.0)
    builder.add_input("a", x=0.0, y=10.0)
    builder.add_output("z", x=40.0, y=10.0)
    return builder


@pytest.fixture(scope="session")
def spread_positions(small_design):
    """Deterministic non-degenerate positions for the small design."""
    rng = np.random.default_rng(42)
    x = small_design.cell_x + rng.normal(0, 6, small_design.n_cells)
    y = small_design.cell_y + rng.normal(0, 6, small_design.n_cells)
    x[small_design.cell_fixed] = small_design.cell_x[small_design.cell_fixed]
    y[small_design.cell_fixed] = small_design.cell_y[small_design.cell_fixed]
    return x, y
