"""Integration tests for the global placer substrate."""

import numpy as np
import pytest

from repro.place import GlobalPlacer, PlacerOptions, hpwl


@pytest.fixture(scope="module")
def placed(small_design):
    placer = GlobalPlacer(small_design, PlacerOptions(max_iters=400, seed=1))
    return placer, placer.run()


class TestConvergence:
    def test_reaches_overflow_target(self, placed):
        placer, result = placed
        assert result.stop_reason == "overflow"
        assert result.overflow < placer.options.stop_overflow

    def test_positions_inside_die(self, placed, small_design):
        _, result = placed
        xl, yl, xh, yh = small_design.die
        assert (result.x >= xl - 1e-9).all() and (result.x <= xh + 1e-9).all()
        assert (result.y >= yl - 1e-9).all() and (result.y <= yh + 1e-9).all()

    def test_fixed_cells_unmoved(self, placed, small_design):
        _, result = placed
        fixed = small_design.cell_fixed
        np.testing.assert_allclose(result.x[fixed], small_design.cell_x[fixed])
        np.testing.assert_allclose(result.y[fixed], small_design.cell_y[fixed])

    def test_beats_random_placement_hpwl(self, placed, small_design):
        _, result = placed
        rng = np.random.default_rng(0)
        xl, yl, xh, yh = small_design.die
        rand_x = rng.uniform(xl, xh, small_design.n_cells)
        rand_y = rng.uniform(yl, yh, small_design.n_cells)
        rand_x[small_design.cell_fixed] = small_design.cell_x[small_design.cell_fixed]
        rand_y[small_design.cell_fixed] = small_design.cell_y[small_design.cell_fixed]
        assert result.hpwl < hpwl(small_design, rand_x, rand_y)

    def test_trace_recorded(self, placed):
        _, result = placed
        assert len(result.trace) > 10
        assert {"iteration", "hpwl", "overflow", "lambda"} <= set(result.trace[0])
        its, vals = result.series("overflow")
        assert vals[-1] < vals[0]

    def test_deterministic_given_seed(self, small_design):
        r1 = GlobalPlacer(small_design, PlacerOptions(max_iters=60, seed=5)).run()
        r2 = GlobalPlacer(small_design, PlacerOptions(max_iters=60, seed=5)).run()
        np.testing.assert_allclose(r1.x, r2.x)
        assert r1.hpwl == pytest.approx(r2.hpwl)


class TestHooks:
    def test_net_weight_hook_called(self, small_design):
        calls = []

        def weight_fn(iteration, x, y):
            calls.append(iteration)
            return None

        GlobalPlacer(
            small_design, PlacerOptions(max_iters=20), net_weight_fn=weight_fn
        ).run()
        assert len(calls) == 20

    def test_extra_grad_metrics_in_trace(self, small_design):
        def grad_fn(iteration, x, y):
            zeros = np.zeros(small_design.n_cells)
            return zeros, zeros, {"probe": float(iteration)}

        result = GlobalPlacer(
            small_design, PlacerOptions(max_iters=15), extra_grad_fn=grad_fn
        ).run()
        assert any("probe" in t for t in result.trace)

    def test_constant_weights_match_default(self, small_design):
        base = GlobalPlacer(small_design, PlacerOptions(max_iters=50, seed=2)).run()
        ones = GlobalPlacer(
            small_design,
            PlacerOptions(max_iters=50, seed=2),
            net_weight_fn=lambda i, x, y: np.ones(small_design.n_nets),
        ).run()
        assert ones.hpwl == pytest.approx(base.hpwl, rel=1e-9)

    def test_wl_grad_norm_exposed(self, small_design):
        seen = []

        def grad_fn(iteration, x, y):
            return None

        placer = GlobalPlacer(
            small_design, PlacerOptions(max_iters=5), extra_grad_fn=grad_fn
        )
        placer.run()
        assert placer.last_wl_grad_l1 > 0
        assert placer.last_overflow <= 1.5


class TestOptions:
    def test_adam_also_converges(self, small_design):
        result = GlobalPlacer(
            small_design, PlacerOptions(max_iters=500, optimizer="adam")
        ).run()
        assert result.overflow < 0.15

    def test_initial_positions_near_center(self, small_design):
        placer = GlobalPlacer(small_design, PlacerOptions(noise_fraction=0.01))
        x, y = placer.initial_positions()
        xl, yl, xh, yh = small_design.die
        movable = ~small_design.cell_fixed
        assert np.abs(x[movable] - 0.5 * (xl + xh)).max() < 0.02 * (xh - xl)

    def test_explicit_start_positions_used(self, small_design):
        rng = np.random.default_rng(9)
        xl, yl, xh, yh = small_design.die
        x0 = rng.uniform(xl, xh, small_design.n_cells)
        y0 = rng.uniform(yl, yh, small_design.n_cells)
        result = GlobalPlacer(small_design, PlacerOptions(max_iters=1)).run(x0, y0)
        # After one iteration positions should still be close to x0.
        movable = ~small_design.cell_fixed
        assert np.abs(result.x[movable] - x0[movable]).mean() < 5.0
