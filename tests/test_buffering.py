"""Tests for netlist editing and timing-driven buffer insertion."""

import numpy as np
import pytest

from repro.netlist import clone_design, insert_buffer
from repro.place import (
    BufferingOptions,
    GlobalPlacer,
    PlacerOptions,
    TimingDrivenBufferizer,
    legalize,
)
from repro.sta import run_sta


class TestCloneDesign:
    def test_identical_structure(self, small_design):
        clone = clone_design(small_design)
        assert clone.n_cells == small_design.n_cells
        assert clone.n_nets == small_design.n_nets
        assert clone.n_pins == small_design.n_pins
        assert clone.cell_name == small_design.cell_name
        assert clone.net_name == small_design.net_name
        np.testing.assert_allclose(clone.cell_x, small_design.cell_x)
        np.testing.assert_array_equal(clone.net2pin, small_design.net2pin)

    def test_identical_timing(self, small_design, spread_positions):
        x, y = spread_positions
        clone = clone_design(small_design)
        r1 = run_sta(small_design, x, y)
        r2 = run_sta(clone, x, y)
        assert r2.wns_setup == pytest.approx(r1.wns_setup)
        assert r2.tns_setup == pytest.approx(r1.tns_setup)

    def test_clone_is_independent(self, small_design):
        clone = clone_design(small_design)
        clone.cell_x[0] += 5.0
        assert clone.cell_x[0] != small_design.cell_x[0]


class TestInsertBuffer:
    def _fanout_net(self, design, min_sinks=3):
        for ni in range(design.n_nets):
            if design.net_is_clock[ni]:
                continue
            if design.net_degree(ni) >= min_sinks + 1:
                return ni
        pytest.skip("no suitable fanout net")

    def test_structure_after_insertion(self, small_design):
        d = small_design
        ni = self._fanout_net(d)
        driver = int(d.net_driver[ni])
        sinks = [int(p) for p in d.net_pins(ni) if p != driver]
        moved = sinks[:2]
        edited = insert_buffer(d, ni, moved, (10.0, 10.0), name="tb0")
        assert edited.n_cells == d.n_cells + 1
        assert edited.n_nets == d.n_nets + 1
        assert edited.n_pins == d.n_pins + 2
        # Original net lost the moved sinks, gained the buffer input.
        ni2 = edited.net_index(d.net_name[ni])
        assert edited.net_degree(ni2) == d.net_degree(ni) - len(moved) + 1
        # New net: buffer output + moved sinks.
        nb = edited.net_index(f"{d.net_name[ni]}_buf")
        assert edited.net_degree(nb) == len(moved) + 1

    def test_timing_still_analyzable(self, small_design, spread_positions):
        x, y = spread_positions
        d = small_design
        ni = self._fanout_net(d)
        driver = int(d.net_driver[ni])
        sinks = [int(p) for p in d.net_pins(ni) if p != driver]
        edited = insert_buffer(d, ni, sinks[:2], (15.0, 15.0))
        result = run_sta(edited)
        assert np.isfinite(result.wns_setup)

    def test_clock_net_refused(self, small_design):
        clk = int(np.nonzero(small_design.net_is_clock)[0][0])
        pins = small_design.net_pins(clk)
        driver = int(small_design.net_driver[clk])
        sinks = [int(p) for p in pins if p != driver]
        with pytest.raises(ValueError, match="clock"):
            insert_buffer(small_design, clk, sinks[:1], (0.0, 0.0))

    def test_empty_subset_refused(self, small_design):
        ni = self._fanout_net(small_design)
        with pytest.raises(ValueError, match="no sinks"):
            insert_buffer(small_design, ni, [], (0.0, 0.0))

    def test_foreign_pin_refused(self, small_design):
        ni = self._fanout_net(small_design)
        driver = int(small_design.net_driver[ni])
        with pytest.raises(ValueError, match="moved sinks"):
            insert_buffer(small_design, ni, [driver], (0.0, 0.0))

    def test_repeater_on_two_pin_net(self, chain_design):
        d = chain_design
        ni = d.net_index("n1")
        driver = int(d.net_driver[ni])
        sink = [int(p) for p in d.net_pins(ni) if p != driver]
        edited = insert_buffer(d, ni, sink, (30.0, 10.0))
        assert edited.n_cells == d.n_cells + 1
        result = run_sta(edited)
        assert np.isfinite(result.wns_setup)


class TestBufferizer:
    @pytest.fixture(scope="class")
    def placed(self, medium_design):
        res = GlobalPlacer(medium_design, PlacerOptions(max_iters=400)).run()
        return legalize(medium_design, res.x, res.y)

    def test_never_degrades_score(self, medium_design, placed):
        lx, ly = placed
        buf = TimingDrivenBufferizer(BufferingOptions(max_buffers=4)).run(
            medium_design, lx, ly
        )
        score_before = buf.tns_before + 50.0 * buf.wns_before
        score_after = buf.tns_after + 50.0 * buf.wns_after
        assert score_after >= score_before - 1e-6

    def test_accepted_buffers_verified_by_golden_sta(self, medium_design, placed):
        lx, ly = placed
        buf = TimingDrivenBufferizer(BufferingOptions(max_buffers=4)).run(
            medium_design, lx, ly
        )
        check = run_sta(buf.design, buf.x, buf.y)
        assert check.wns_setup == pytest.approx(buf.wns_after, abs=1e-6)
        assert buf.design.n_cells == medium_design.n_cells + buf.n_inserted
        for name in buf.inserted_names:
            assert name in buf.design.cell_name

    def test_input_design_untouched(self, medium_design, placed):
        lx, ly = placed
        n_before = medium_design.n_cells
        TimingDrivenBufferizer(BufferingOptions(max_buffers=2)).run(
            medium_design, lx, ly
        )
        assert medium_design.n_cells == n_before

    def test_zero_budget_is_noop(self, medium_design, placed):
        lx, ly = placed
        buf = TimingDrivenBufferizer(BufferingOptions(max_buffers=0)).run(
            medium_design, lx, ly
        )
        assert buf.n_inserted == 0
        assert buf.wns_after == pytest.approx(buf.wns_before)
