"""Tests for net-criticality policies and RUDY congestion maps."""

import numpy as np
import pytest

from repro.place import CRITICALITY_POLICIES, make_criticality, rudy_map
from repro.place.netweight import MomentumNetWeighter, NetWeightOptions


class TestCriticalityPolicies:
    slacks = np.array([-100.0, -50.0, -1.0, 0.0, 25.0, 500.0])
    wns = -100.0

    @pytest.mark.parametrize("policy", sorted(CRITICALITY_POLICIES))
    def test_nonnegative_and_zero_for_relaxed(self, policy):
        fn = make_criticality(policy)
        c = fn(self.slacks, self.wns)
        assert (c >= 0).all()
        assert c[-1] == pytest.approx(0.0)  # very relaxed net

    def test_linear_matches_paper_form(self):
        fn = make_criticality("linear")
        c = fn(self.slacks, self.wns)
        np.testing.assert_allclose(c[:3], [1.0, 0.5, 0.01])
        assert c[3] == 0.0

    def test_exponential_sharper_than_linear(self):
        lin = make_criticality("linear")(self.slacks, self.wns)
        exp = make_criticality("exponential")(self.slacks, self.wns)
        # At the worst net exponential >= linear; near zero it is below.
        assert exp[0] >= lin[0]
        assert exp[2] < lin[2] * 3  # stays bounded

    def test_exponential_exponent_kwarg(self):
        e2 = make_criticality("exponential", exponent=2.0)(self.slacks, self.wns)
        e4 = make_criticality("exponential", exponent=4.0)(self.slacks, self.wns)
        assert e4[0] > e2[0]

    def test_threshold_binary(self):
        c = make_criticality("threshold")(self.slacks, self.wns)
        assert set(np.unique(c)) <= {0.0, 1.0}
        assert c[0] == 1.0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="criticality"):
            make_criticality("quantum")

    def test_weighter_accepts_policy(self, small_design, spread_positions):
        x, y = spread_positions
        w = MomentumNetWeighter(
            small_design,
            NetWeightOptions(start_iteration=0, criticality="exponential"),
        )
        weights = w(0, x, y)
        assert weights is not None
        assert weights.max() > 1.0


class TestRudy:
    def test_shape_and_nonnegative(self, small_design, spread_positions):
        x, y = spread_positions
        cm = rudy_map(small_design, x, y, n_bins=16)
        assert cm.density.shape == (16, 16)
        assert (cm.density >= 0).all()
        assert cm.peak >= cm.mean

    def test_clustered_placement_more_congested(self, small_design):
        d = small_design
        xl, yl, xh, yh = d.die
        x_tight = np.full(d.n_cells, 0.5 * (xl + xh))
        y_tight = np.full(d.n_cells, 0.5 * (yl + yh))
        rng = np.random.default_rng(0)
        x_loose = rng.uniform(xl, xh, d.n_cells)
        y_loose = rng.uniform(yl, yh, d.n_cells)
        tight = rudy_map(d, x_tight, y_tight)
        loose = rudy_map(d, x_loose, y_loose)
        assert tight.peak > loose.peak

    def test_overflow_fraction_monotone_in_capacity(self, small_design, spread_positions):
        x, y = spread_positions
        cm = rudy_map(small_design, x, y)
        assert cm.overflow_fraction(0.0) >= cm.overflow_fraction(cm.peak / 2)
        assert cm.overflow_fraction(cm.peak + 1) == 0.0

    def test_single_net_density_integral(self, library):
        """One net's deposited density integrates to ~its RUDY volume."""
        from repro.netlist import DesignBuilder

        b = DesignBuilder("one", library, die=(0, 0, 32, 32))
        b.add_input("clk", x=0, y=0)
        b.add_input("a", x=4.0, y=4.0)
        b.add_cell("u1", "INV_X1", x=20.0, y=28.0)
        b.add_net("n", ["a", "u1/A"])
        d = b.build()
        cm = rudy_map(d, n_bins=16)
        px, py = d.pin_positions()
        pins = d.net_pins(d.net_index("n"))
        w = float(px[pins].max() - px[pins].min())
        h = float(py[pins].max() - py[pins].min())
        expected_volume = (w + h) / (w * h) * (w * h) / (cm.bin_w * cm.bin_h)
        assert cm.density.sum() == pytest.approx(expected_volume, rel=1e-6)

    def test_placers_report_comparable_congestion(self, medium_design):
        """Timing-driven placement must not blow up congestion."""
        from repro.core import TimingDrivenPlacer, TimingPlacerOptions
        from repro.place import GlobalPlacer, PlacerOptions

        popts = PlacerOptions(max_iters=450, seed=0)
        base = GlobalPlacer(medium_design, popts).run()
        ours = TimingDrivenPlacer(
            medium_design, TimingPlacerOptions(placer=popts, sta_in_trace=False)
        ).run()
        cm_base = rudy_map(medium_design, base.x, base.y)
        cm_ours = rudy_map(medium_design, ours.x, ours.y)
        assert cm_ours.peak < 2.0 * cm_base.peak
