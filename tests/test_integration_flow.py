"""End-to-end integration: every stage of the flow chained on one design.

generate -> timing-driven GP -> legalize -> detailed placement ->
buffer insertion -> bundle save/load -> final STA, with cross-stage
invariants asserted at every hand-off.  This is the test that fails first
when an interface between subsystems drifts.
"""

import numpy as np
import pytest

from repro.core import TimingDrivenPlacer, TimingPlacerOptions
from repro.netlist import (
    GeneratorSpec,
    generate_design,
    load_design_bundle,
    save_design,
)
from repro.place import (
    BufferingOptions,
    DetailedPlacerOptions,
    GlobalPlacer,
    PlacerOptions,
    TimingDrivenBufferizer,
    TimingDrivenDetailedPlacer,
    legalize,
    max_overlap,
    rudy_map,
)
from repro.sta import run_sta, slack_histogram, worst_paths


@pytest.fixture(scope="module")
def flow_state(tmp_path_factory):
    design = generate_design(
        GeneratorSpec(name="integration", n_cells=220, depth=8, seed=99)
    )
    state = {"design": design}

    gp = TimingDrivenPlacer(
        design,
        TimingPlacerOptions(placer=PlacerOptions(max_iters=500), sta_in_trace=False),
    ).run()
    state["gp"] = gp

    lx, ly = legalize(design, gp.x, gp.y)
    state["legal"] = (lx, ly)

    dp = TimingDrivenDetailedPlacer(
        design, DetailedPlacerOptions(passes=1, n_critical_paths=4)
    ).run(lx, ly)
    state["dp"] = dp

    buf = TimingDrivenBufferizer(BufferingOptions(max_buffers=3)).run(
        design, dp.x, dp.y
    )
    bx, by = legalize(buf.design, buf.x, buf.y)
    state["buf"] = buf
    state["buf_legal"] = (bx, by)

    bundle = str(tmp_path_factory.mktemp("flow_bundle"))
    save_design(buf.design, bundle, bx, by)
    state["bundle"] = bundle
    return state


class TestFlowInvariants:
    def test_global_placement_converged(self, flow_state):
        assert flow_state["gp"].stop_reason == "overflow"

    def test_gp_beats_wirelength_only_on_timing(self, flow_state):
        design = flow_state["design"]
        base = GlobalPlacer(design, PlacerOptions(max_iters=500)).run()
        r_base = run_sta(design, base.x, base.y)
        r_ours = run_sta(design, flow_state["gp"].x, flow_state["gp"].y)
        assert r_ours.tns_setup > r_base.tns_setup

    def test_each_stage_legal_and_in_die(self, flow_state):
        design = flow_state["design"]
        lx, ly = flow_state["legal"]
        assert max_overlap(design, lx, ly) < 1e-9
        dp = flow_state["dp"]
        assert max_overlap(design, dp.x, dp.y) < 1e-9
        buf = flow_state["buf"]
        bx, by = flow_state["buf_legal"]
        assert max_overlap(buf.design, bx, by) < 1e-9
        xl, yl, xh, yh = design.die
        assert (bx >= xl - 1e-9).all() and (bx <= xh + 1e-9).all()

    def test_optimization_stages_never_hurt_their_score(self, flow_state):
        dp = flow_state["dp"]
        assert dp.wns_after >= dp.wns_before - 1e-6
        buf = flow_state["buf"]
        score = lambda w, t: t + 50.0 * w
        assert score(buf.wns_after, buf.tns_after) >= score(
            buf.wns_before, buf.tns_before
        ) - 1e-6

    def test_bundle_roundtrip_preserves_final_timing(self, flow_state):
        buf = flow_state["buf"]
        bx, by = flow_state["buf_legal"]
        reference = run_sta(buf.design, bx, by)
        reloaded, x, y = load_design_bundle(flow_state["bundle"])
        result = run_sta(reloaded)
        assert reloaded.n_cells == buf.design.n_cells
        assert result.wns_setup == pytest.approx(reference.wns_setup, rel=0.02)
        assert result.tns_setup == pytest.approx(reference.tns_setup, rel=0.02)

    def test_reports_work_on_final_design(self, flow_state):
        buf = flow_state["buf"]
        bx, by = flow_state["buf_legal"]
        result = run_sta(buf.design, bx, by, compute_hold=True,
                         propagated_clock=True)
        hist = slack_histogram(result)
        assert hist.n_endpoints == len(result.endpoint_slack)
        paths = worst_paths(result, 2)
        assert len(paths) == 2
        cm = rudy_map(buf.design, bx, by)
        assert np.isfinite(cm.peak)
