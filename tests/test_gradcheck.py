"""Unit tests for the finite-difference gradient-check utility."""

import numpy as np
import pytest

from repro.core import check_gradient, central_difference


def quadratic(x):
    return float(np.sum(x**2) + 2.0 * x[0])


class TestCentralDifference:
    def test_quadratic_partial(self):
        x = np.array([1.0, 2.0, 3.0])
        fd = central_difference(quadratic, x, 0)
        assert fd == pytest.approx(2 * x[0] + 2.0, rel=1e-6)

    def test_second_coordinate(self):
        x = np.array([1.0, 2.0, 3.0])
        assert central_difference(quadratic, x, 2) == pytest.approx(6.0, rel=1e-6)


class TestCheckGradient:
    def test_correct_gradient_passes(self):
        x = np.array([0.5, -1.5, 2.0])
        grad = 2 * x + np.array([2.0, 0.0, 0.0])
        report = check_gradient(quadratic, grad, x)
        assert report.ok
        assert report.n_checked == 3
        assert report.max_abs_err < 1e-5

    def test_wrong_gradient_fails(self):
        x = np.array([0.5, -1.5, 2.0])
        grad = np.zeros(3)
        report = check_gradient(quadratic, grad, x)
        assert not report.ok
        assert report.n_failed == 3

    def test_subset_of_indices(self):
        x = np.arange(10, dtype=float)
        grad = 2 * x + np.eye(10)[0] * 2.0
        report = check_gradient(quadratic, grad, x, indices=[0, 5])
        assert report.n_checked == 2
        assert report.ok

    def test_str_mentions_counts(self):
        x = np.array([1.0])
        report = check_gradient(lambda v: float(v[0] ** 2), np.array([2.0]), x)
        assert "1 probes" in str(report)
