"""Bit-exact equivalence of ``repro.core.scatter`` with ``np.add.at``.

Two layers of proof:

1. every helper matches its ``np.add.at`` reference form bit for bit on
   adversarial inputs (heavy duplication, empty indices, broadcast
   stencils);
2. the converted kernels (wirelength, density, routing forest, the full
   differentiable timer) produce byte-identical objectives and
   gradients when their scatter helpers are swapped back to inline
   ``np.add.at`` references - i.e. the conversion changed no bits of
   any result, only the speed.
"""

import numpy as np
import pytest

import repro.core.cell_prop as cell_prop
import repro.core.difftimer as difftimer_mod
import repro.core.elmore_grad as elmore_grad_mod
import repro.core.net_prop as net_prop
import repro.core.smoothing as smoothing_mod
import repro.place.density as density_mod
import repro.place.wirelength as wirelength_mod
import repro.route.tree as tree_mod
from repro.core import DifferentiableTimer
from repro.core.scatter import (
    scatter_accumulate,
    scatter_accumulate_at,
    scatter_accumulate_rows,
    scatter_add,
    scatter_add_2d,
    scatter_add_rows,
)
from repro.place import DensityModel, WAWirelength
from repro.route import build_forest


# ----------------------------------------------------------------------
# np.add.at reference forms (what the converted call sites used to do).
# ----------------------------------------------------------------------
def ref_scatter_add(index, values, size):
    out = np.zeros(size)
    np.add.at(out, index, values)
    return out


def ref_scatter_add_2d(ix, iy, values, shape):
    out = np.zeros(shape)
    np.add.at(out, (ix, iy), values)
    return out


def ref_scatter_add_rows(rows, values, n_rows):
    out = np.zeros((n_rows, values.shape[1]))
    np.add.at(out, rows, values)
    return out


def ref_scatter_accumulate(out, index, values):
    np.add.at(out, index, values)
    return out


def ref_scatter_accumulate_at(out, rows, cols, values):
    np.add.at(out, (rows, cols), values)
    return out


def ref_scatter_accumulate_rows(out, rows, values):
    np.add.at(out, rows, values)
    return out


def assert_bit_identical(a, b):
    a, b = np.asarray(a), np.asarray(b)
    assert a.dtype == b.dtype and a.shape == b.shape
    assert a.tobytes() == b.tobytes()


@pytest.fixture(params=[0, 1, 2])
def case(request):
    """(index, values, size) with varying duplication patterns."""
    rng = np.random.default_rng(request.param)
    size = [64, 1000, 7][request.param]
    n = [500, 5000, 2000][request.param]
    index = rng.integers(0, size, n)
    values = rng.standard_normal(n) * 10.0 ** rng.integers(-6, 6, n)
    return index, values, size


class TestHelperEquivalence:
    def test_scatter_add(self, case):
        index, values, size = case
        assert_bit_identical(
            scatter_add(index, values, size), ref_scatter_add(index, values, size)
        )

    def test_scatter_add_2d(self, case):
        index, values, size = case
        rng = np.random.default_rng(99)
        iy = rng.integers(0, 5, index.size)
        assert_bit_identical(
            scatter_add_2d(index, iy, values, (size, 5)),
            ref_scatter_add_2d(index, iy, values, (size, 5)),
        )

    def test_scatter_add_rows(self, case):
        index, values, size = case
        rows = np.stack([values, -values], axis=1)
        assert_bit_identical(
            scatter_add_rows(index, rows, size),
            ref_scatter_add_rows(index, rows, size),
        )

    def test_scatter_accumulate_into_nonzero(self, case):
        index, values, size = case
        base = np.random.default_rng(7).standard_normal(size)
        assert_bit_identical(
            scatter_accumulate(base.copy(), index, values),
            ref_scatter_accumulate(base.copy(), index, values),
        )

    def test_scatter_accumulate_rows(self, case):
        index, values, size = case
        base = np.random.default_rng(8).standard_normal((size, 2))
        rows = np.stack([values, 2.0 * values], axis=1)
        assert_bit_identical(
            scatter_accumulate_rows(base.copy(), index, rows),
            ref_scatter_accumulate_rows(base.copy(), index, rows),
        )

    def test_scatter_accumulate_at_plain(self, case):
        index, values, size = case
        cols = np.random.default_rng(9).integers(0, 3, index.size)
        base = np.random.default_rng(10).standard_normal((size, 3))
        assert_bit_identical(
            scatter_accumulate_at(base.copy(), index, cols, values),
            ref_scatter_accumulate_at(base.copy(), index, cols, values),
        )

    def test_scatter_accumulate_at_broadcast_stencil(self):
        """The difftimer endpoint-seed shape: ep[:, None] vs [[RISE, FALL]]."""
        rng = np.random.default_rng(3)
        ep = rng.integers(0, 40, 25)
        vals = rng.standard_normal((25, 2))
        base = rng.standard_normal((40, 2))
        stencil = np.array([[0, 1]])
        assert_bit_identical(
            scatter_accumulate_at(base.copy(), ep[:, None], stencil, vals),
            ref_scatter_accumulate_at(base.copy(), (ep[:, None]), stencil, vals),
        )

    def test_empty_index(self):
        empty_i = np.array([], dtype=np.int64)
        empty_v = np.array([])
        assert_bit_identical(
            scatter_add(empty_i, empty_v, 5), ref_scatter_add(empty_i, empty_v, 5)
        )
        base = np.arange(5.0)
        assert_bit_identical(
            scatter_accumulate(base.copy(), empty_i, empty_v), base
        )

    def test_non_contiguous_target_raises(self):
        out = np.zeros((4, 6)).T  # F-ordered view: reshape(-1) would copy
        with pytest.raises(ValueError, match="C-contiguous"):
            scatter_accumulate_rows(out, np.array([0, 1]), np.ones((2, 4)))


# ----------------------------------------------------------------------
# End-to-end: swapping the helpers back to np.add.at references must not
# change a single bit of any objective or gradient.
# ----------------------------------------------------------------------
_PATCH_SITES = (
    (wirelength_mod, "scatter_add", ref_scatter_add),
    (density_mod, "scatter_add", ref_scatter_add),
    (tree_mod, "scatter_add", ref_scatter_add),
    (smoothing_mod, "scatter_add", ref_scatter_add),
    (elmore_grad_mod, "scatter_add", ref_scatter_add),
    (elmore_grad_mod, "scatter_accumulate", ref_scatter_accumulate),
    (net_prop, "scatter_accumulate_rows", ref_scatter_accumulate_rows),
    (cell_prop, "scatter_accumulate", ref_scatter_accumulate),
    (cell_prop, "scatter_accumulate_at", ref_scatter_accumulate_at),
    (difftimer_mod, "scatter_add", ref_scatter_add),
    (difftimer_mod, "scatter_accumulate_at", ref_scatter_accumulate_at),
)


def _patch_old_path(monkeypatch):
    for mod, name, ref in _PATCH_SITES:
        assert hasattr(mod, name), f"{mod.__name__}.{name} vanished"
        monkeypatch.setattr(mod, name, ref)


class TestKernelBitIdentity:
    def test_wirelength_objective_and_grad(
        self, small_design, spread_positions, monkeypatch
    ):
        x, y = spread_positions
        wa = WAWirelength(small_design)
        wl_new, gx_new, gy_new = wa.evaluate(x, y, gamma=40.0)
        _patch_old_path(monkeypatch)
        wl_old, gx_old, gy_old = wa.evaluate(x, y, gamma=40.0)
        assert wl_new == wl_old
        assert_bit_identical(gx_new, gx_old)
        assert_bit_identical(gy_new, gy_old)

    def test_density_energy_and_grad(
        self, small_design, spread_positions, monkeypatch
    ):
        x, y = spread_positions
        model = DensityModel(small_design, n_bins=16)
        res_new = model.evaluate(x, y)
        _patch_old_path(monkeypatch)
        res_old = model.evaluate(x, y)
        assert res_new.energy == res_old.energy
        assert res_new.overflow == res_old.overflow
        assert_bit_identical(res_new.grad_x, res_old.grad_x)
        assert_bit_identical(res_new.grad_y, res_old.grad_y)

    def test_forest_coord_grad(self, small_design, spread_positions, monkeypatch):
        x, y = spread_positions
        forest = build_forest(small_design, x, y)
        rng = np.random.default_rng(11)
        gnx = rng.standard_normal(forest.n_nodes)
        gny = rng.standard_normal(forest.n_nodes)
        px_new, py_new = forest.scatter_coord_grad(gnx, gny)
        _patch_old_path(monkeypatch)
        px_old, py_old = forest.scatter_coord_grad(gnx, gny)
        assert_bit_identical(px_new, px_old)
        assert_bit_identical(py_new, py_old)

    def test_full_timer_forward_backward(
        self, small_design, spread_positions, monkeypatch
    ):
        """The whole differentiable-timing stack (Elmore forward/backward,
        net/cell propagation, LSE merges, endpoint seeding) bit for bit."""
        x, y = spread_positions
        forest = build_forest(small_design, x, y)
        timer = DifferentiableTimer(small_design, gamma=15.0)
        tape_new = timer.forward(x, y, forest)
        gx_new, gy_new = timer.backward(tape_new, d_tns=0.7, d_wns=0.3)
        _patch_old_path(monkeypatch)
        tape_old = timer.forward(x, y, forest)
        gx_old, gy_old = timer.backward(tape_old, d_tns=0.7, d_wns=0.3)
        assert tape_new.tns == tape_old.tns
        assert tape_new.wns == tape_old.wns
        assert_bit_identical(tape_new.at, tape_old.at)
        assert_bit_identical(tape_new.slew, tape_old.slew)
        assert_bit_identical(gx_new, gx_old)
        assert_bit_identical(gy_new, gy_old)
