"""Tests for the alternative (D2M) differentiable wire-delay model.

The paper claims its framework generalises to any wire model expressible
analytically from the Elmore moment passes; the D2M metric is the proof of
concept: same four DP passes, different analytic head.
"""

import numpy as np
import pytest

from repro.core import DifferentiableTimer
from repro.netlist import WireModel
from repro.route import Forest, RoutingTree, build_forest
from repro.sta import StaticTimingAnalyzer, run_sta
from repro.sta.elmore import d2m_delay, elmore_forward


class TestD2MMetric:
    def test_single_pole_is_exact_ln2(self):
        """One lumped RC: m2 = m1^2, so D2M = ln2 * m1 (textbook value)."""
        tree = RoutingTree(
            x=np.array([0.0, 10.0]),
            y=np.array([0.0, 0.0]),
            parent=np.array([-1, 0]),
            pins=np.array([0, 1]),
            owner_x=np.array([0, 1]),
            owner_y=np.array([0, 1]),
            root=0,
        )
        forest = Forest([tree], 2)
        # No wire capacitance: all cap at the sink -> single pole.
        wire = WireModel(res_per_um=0.02, cap_per_um=0.0)
        caps = np.array([0.0, 5.0])
        elm = elmore_forward(forest, tree.x, tree.y, caps, wire)
        d2m = d2m_delay(elm.delay, elm.beta)
        assert d2m[1] == pytest.approx(np.log(2.0) * elm.delay[1])

    def test_zero_moments_give_zero(self):
        out = d2m_delay(np.zeros(3), np.zeros(3))
        np.testing.assert_allclose(out, 0.0)

    def test_less_pessimistic_than_elmore(self, small_design, spread_positions):
        x, y = spread_positions
        forest = build_forest(small_design, x, y)
        px, py = small_design.pin_positions(x, y)
        nx, ny = forest.node_coords(px, py)
        from repro.sta.elmore import node_caps

        caps = node_caps(forest, small_design.pin_cap)
        elm = elmore_forward(forest, nx, ny, caps, small_design.library.wire)
        d2m = d2m_delay(elm.delay, elm.beta)
        assert (d2m <= elm.delay + 1e-9).all()
        assert (d2m >= 0).all()


class TestGoldenStaWithD2M:
    def test_d2m_sta_is_faster_overall(self, small_design, spread_positions):
        x, y = spread_positions
        elmore_res = run_sta(small_design, x, y)
        d2m_res = run_sta(small_design, x, y, wire_delay_model="d2m")
        # D2M shortens every net delay, so arrival times can only improve.
        assert d2m_res.wns_setup >= elmore_res.wns_setup
        assert d2m_res.tns_setup >= elmore_res.tns_setup

    def test_unknown_model_rejected(self, small_design):
        with pytest.raises(ValueError, match="wire delay model"):
            StaticTimingAnalyzer(small_design, wire_delay_model="pi")
        with pytest.raises(ValueError, match="wire delay model"):
            DifferentiableTimer(small_design, wire_delay_model="pi")


class TestDifferentiableD2M:
    @pytest.fixture(scope="class")
    def env(self, small_design, spread_positions):
        x, y = spread_positions
        forest = build_forest(small_design, x, y)
        timer = DifferentiableTimer(
            small_design, gamma=15.0, wire_delay_model="d2m"
        )
        return small_design, x, y, forest, timer

    def test_forward_matches_golden_with_small_gamma(self, small_design, spread_positions):
        x, y = spread_positions
        forest = build_forest(small_design, x, y)
        timer = DifferentiableTimer(
            small_design, gamma=0.5, wire_delay_model="d2m"
        )
        tape = timer.forward(x, y, forest)
        golden = run_sta(small_design, x, y, wire_delay_model="d2m")
        assert tape.tns == pytest.approx(golden.tns_setup, rel=0.05)

    def test_gradient_matches_finite_difference(self, env):
        design, x, y, forest, timer = env
        tape = timer.forward(x, y, forest)
        gx, gy = timer.backward(tape, d_tns=1.0, d_wns=0.2)

        def objective(xx, yy):
            t = timer.forward(xx, yy, forest)
            return t.tns + 0.2 * t.wns

        rng = np.random.default_rng(7)
        movable = np.nonzero(~design.cell_fixed)[0]
        strong = movable[np.argsort(-np.abs(gx[movable]))[:5]]
        probes = np.unique(np.concatenate([strong, rng.choice(movable, 5)]))
        eps = 1e-4
        for ci in probes:
            a, b = x.copy(), x.copy()
            a[ci] += eps
            b[ci] -= eps
            fd = (objective(a, y) - objective(b, y)) / (2 * eps)
            assert gx[ci] == pytest.approx(fd, rel=2e-3, abs=1e-6)

    def test_placement_with_d2m_objective_improves_timing(self, medium_design):
        from repro.core import (
            TimingDrivenPlacer,
            TimingObjectiveOptions,
            TimingPlacerOptions,
        )
        from repro.place import GlobalPlacer, PlacerOptions

        popts = PlacerOptions(max_iters=450, seed=0)
        base = GlobalPlacer(medium_design, popts).run()
        tp = TimingDrivenPlacer(
            medium_design,
            TimingPlacerOptions(placer=popts, sta_in_trace=False),
        )
        tp.objective.timer.wire_delay_model = "d2m"
        ours = tp.run()
        rb = run_sta(medium_design, base.x, base.y)
        ro = run_sta(medium_design, ours.x, ours.y)
        assert ro.tns_setup > rb.tns_setup
