"""Validation of the differentiable timing engine (the paper's core).

Three pillars:
1. the forward pass converges to the golden STA as gamma shrinks;
2. the backward pass matches central finite differences of the forward
   pass exactly (the trees are held fixed, which is the quantity the
   gradient models - Figure 4's reuse rule);
3. the gradients point the right way on hand-analysable designs.
"""

import numpy as np
import pytest

from repro.core import DifferentiableTimer
from repro.netlist import make_chain_design
from repro.route import build_forest
from repro.sta import run_sta


@pytest.fixture(scope="module")
def env(small_design):
    rng = np.random.default_rng(21)
    x = small_design.cell_x + rng.normal(0, 6, small_design.n_cells)
    y = small_design.cell_y + rng.normal(0, 6, small_design.n_cells)
    x[small_design.cell_fixed] = small_design.cell_x[small_design.cell_fixed]
    y[small_design.cell_fixed] = small_design.cell_y[small_design.cell_fixed]
    forest = build_forest(small_design, x, y)
    return small_design, x, y, forest


class TestForwardAgainstGolden:
    def test_small_gamma_matches_exact_wns(self, env):
        design, x, y, forest = env
        golden = run_sta(design, x, y)
        timer = DifferentiableTimer(design, gamma=0.5)
        tape = timer.forward(x, y, forest)
        # LSE overshoots max slightly; with tiny gamma they coincide.
        assert tape.wns == pytest.approx(golden.wns_setup, abs=5.0)
        assert tape.tns == pytest.approx(golden.tns_setup, rel=0.05)

    def test_smoothing_monotone_in_gamma(self, env):
        """Larger gamma -> more smoothing -> more pessimistic AT (LSE >= max)."""
        design, x, y, forest = env
        wns = []
        for gamma in (1.0, 10.0, 40.0):
            tape = DifferentiableTimer(design, gamma=gamma).forward(x, y, forest)
            wns.append(tape.wns)
        assert wns[0] > wns[1] > wns[2]

    def test_arrival_times_upper_bound_golden(self, env):
        design, x, y, forest = env
        golden = run_sta(design, x, y)
        tape = DifferentiableTimer(design, gamma=10.0).forward(x, y, forest)
        reached = golden.at > -1e29
        assert (tape.at[reached] >= golden.at[reached] - 1e-6).all()

    def test_endpoint_count(self, env):
        design, x, y, forest = env
        tape = DifferentiableTimer(design).forward(x, y, forest)
        assert tape.ep_slack.shape == (
            DifferentiableTimer(design).graph.n_endpoints,
        )


class TestBackwardFiniteDifference:
    @pytest.mark.parametrize(
        "d_tns,d_wns", [(1.0, 0.0), (0.0, 1.0), (0.6, 0.4)]
    )
    def test_gradient_matches_fd(self, env, d_tns, d_wns):
        design, x, y, forest = env
        timer = DifferentiableTimer(design, gamma=15.0)
        tape = timer.forward(x, y, forest)
        gx, gy = timer.backward(tape, d_tns=d_tns, d_wns=d_wns)

        def objective(xx, yy):
            t = timer.forward(xx, yy, forest)
            return d_tns * t.tns + d_wns * t.wns

        rng = np.random.default_rng(5)
        movable = np.nonzero(~design.cell_fixed)[0]
        strong = movable[np.argsort(-np.abs(gx[movable]))[:6]]
        probes = np.unique(np.concatenate([strong, rng.choice(movable, 8)]))
        eps = 1e-4
        for ci in probes:
            for arr, grad in ((x, gx), (y, gy)):
                a, b = arr.copy(), arr.copy()
                a[ci] += eps
                b[ci] -= eps
                if arr is x:
                    fd = (objective(a, y) - objective(b, y)) / (2 * eps)
                else:
                    fd = (objective(x, a) - objective(x, b)) / (2 * eps)
                assert grad[ci] == pytest.approx(fd, rel=2e-3, abs=1e-6)

    def test_fixed_cells_get_zero_gradient(self, env):
        design, x, y, forest = env
        timer = DifferentiableTimer(design)
        tape = timer.forward(x, y, forest)
        gx, gy = timer.backward(tape)
        assert np.abs(gx[design.cell_fixed]).max() == 0.0
        assert np.abs(gy[design.cell_fixed]).max() == 0.0

    def test_tns_wns_with_grad_consistency(self, env):
        design, x, y, forest = env
        timer = DifferentiableTimer(design)
        tns, wns, gx, gy, tape = timer.tns_wns_with_grad(x, y, forest)
        assert tns == pytest.approx(tape.tns)
        assert wns == pytest.approx(tape.wns)


class TestGradientDirection:
    def test_chain_gradient_pulls_cells_toward_shorter_wires(self):
        """On a stretched chain, increasing TNS means compressing the path.

        Gradient-descent direction is -grad(objective) with objective
        -TNS; equivalently cells should move along +d(TNS)/dx steps.
        Moving the middle cell slightly along the positive gradient of TNS
        must not reduce TNS.
        """
        design = make_chain_design(4, clock_period=80.0, die=(0, 0, 200, 20))
        x = design.cell_x.copy()
        y = design.cell_y.copy()
        # Stretch: move middle gates far away vertically.
        gi = design.cell_index("g1")
        y[gi] += 80.0
        forest = build_forest(design, x, y)
        timer = DifferentiableTimer(design, gamma=5.0)
        tape0 = timer.forward(x, y, forest)
        gx, gy = timer.backward(tape0, d_tns=1.0)
        assert gy[gi] != 0.0
        step = 0.5
        x2 = x + step * np.sign(gx) * (np.abs(gx) > 1e-12)
        y2 = y + step * np.sign(gy) * (np.abs(gy) > 1e-12)
        tape1 = timer.forward(x2, y2, forest)
        assert tape1.tns >= tape0.tns

    def test_gradient_descent_step_improves_smoothed_tns(self, env):
        design, x, y, forest = env
        timer = DifferentiableTimer(design, gamma=15.0)
        tape0 = timer.forward(x, y, forest)
        gx, gy = timer.backward(tape0, d_tns=1.0)
        norm = np.abs(gx).max() + np.abs(gy).max()
        step = 0.2 / max(norm, 1e-12)
        tape1 = timer.forward(x + step * gx, y + step * gy, forest)
        assert tape1.tns > tape0.tns
