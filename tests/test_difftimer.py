"""Validation of the differentiable timing engine (the paper's core).

Three pillars:
1. the forward pass converges to the golden STA as gamma shrinks;
2. the backward pass matches central finite differences of the forward
   pass exactly (the trees are held fixed, which is the quantity the
   gradient models - Figure 4's reuse rule);
3. the gradients point the right way on hand-analysable designs.
"""

import numpy as np
import pytest

from repro.core import DifferentiableTimer
from repro.netlist import make_chain_design
from repro.route import build_forest
from repro.sta import run_sta


@pytest.fixture(scope="module")
def env(small_design):
    rng = np.random.default_rng(21)
    x = small_design.cell_x + rng.normal(0, 6, small_design.n_cells)
    y = small_design.cell_y + rng.normal(0, 6, small_design.n_cells)
    x[small_design.cell_fixed] = small_design.cell_x[small_design.cell_fixed]
    y[small_design.cell_fixed] = small_design.cell_y[small_design.cell_fixed]
    forest = build_forest(small_design, x, y)
    return small_design, x, y, forest


class TestForwardAgainstGolden:
    def test_small_gamma_matches_exact_wns(self, env):
        design, x, y, forest = env
        golden = run_sta(design, x, y)
        timer = DifferentiableTimer(design, gamma=0.5)
        tape = timer.forward(x, y, forest)
        # LSE overshoots max slightly; with tiny gamma they coincide.
        assert tape.wns == pytest.approx(golden.wns_setup, abs=5.0)
        assert tape.tns == pytest.approx(golden.tns_setup, rel=0.05)

    def test_smoothing_monotone_in_gamma(self, env):
        """Larger gamma -> more smoothing -> more pessimistic AT (LSE >= max)."""
        design, x, y, forest = env
        wns = []
        for gamma in (1.0, 10.0, 40.0):
            tape = DifferentiableTimer(design, gamma=gamma).forward(x, y, forest)
            wns.append(tape.wns)
        assert wns[0] > wns[1] > wns[2]

    def test_arrival_times_upper_bound_golden(self, env):
        design, x, y, forest = env
        golden = run_sta(design, x, y)
        tape = DifferentiableTimer(design, gamma=10.0).forward(x, y, forest)
        reached = golden.at > -1e29
        assert (tape.at[reached] >= golden.at[reached] - 1e-6).all()

    def test_endpoint_count(self, env):
        design, x, y, forest = env
        tape = DifferentiableTimer(design).forward(x, y, forest)
        assert tape.ep_slack.shape == (
            DifferentiableTimer(design).graph.n_endpoints,
        )


class TestBackwardFiniteDifference:
    def test_exercises_registered_level_kernels(self):
        """The finite-difference gradchecks below certify the propagation
        kernels the timer composes; pin that composition by name so a
        kernel rename breaks this file loudly instead of leaving the
        registry's gradcheck pointing at a test that no longer touches
        it (reprolint ``contract-closure``)."""
        from repro.contracts import KERNEL_REGISTRY
        from repro.core.cell_prop import cell_backward_level, cell_forward_level
        from repro.core.net_prop import net_backward_level, net_forward_level

        for forward, backward in (
            (cell_forward_level, cell_backward_level),
            (net_forward_level, net_backward_level),
        ):
            key = f"{forward.__module__}.{forward.__qualname__}"
            contract = KERNEL_REGISTRY[key]
            assert contract["backward"].endswith(backward.__qualname__)
            assert "test_difftimer.py" in contract["gradcheck"]

    @pytest.mark.parametrize(
        "d_tns,d_wns", [(1.0, 0.0), (0.0, 1.0), (0.6, 0.4)]
    )
    def test_gradient_matches_fd(self, env, d_tns, d_wns):
        design, x, y, forest = env
        timer = DifferentiableTimer(design, gamma=15.0)
        tape = timer.forward(x, y, forest)
        gx, gy = timer.backward(tape, d_tns=d_tns, d_wns=d_wns)

        def objective(xx, yy):
            t = timer.forward(xx, yy, forest)
            return d_tns * t.tns + d_wns * t.wns

        rng = np.random.default_rng(5)
        movable = np.nonzero(~design.cell_fixed)[0]
        strong = movable[np.argsort(-np.abs(gx[movable]))[:6]]
        probes = np.unique(np.concatenate([strong, rng.choice(movable, 8)]))
        eps = 1e-4
        for ci in probes:
            for arr, grad in ((x, gx), (y, gy)):
                a, b = arr.copy(), arr.copy()
                a[ci] += eps
                b[ci] -= eps
                if arr is x:
                    fd = (objective(a, y) - objective(b, y)) / (2 * eps)
                else:
                    fd = (objective(x, a) - objective(x, b)) / (2 * eps)
                assert grad[ci] == pytest.approx(fd, rel=2e-3, abs=1e-6)

    def test_fixed_cells_get_zero_gradient(self, env):
        design, x, y, forest = env
        timer = DifferentiableTimer(design)
        tape = timer.forward(x, y, forest)
        gx, gy = timer.backward(tape)
        assert np.abs(gx[design.cell_fixed]).max() == 0.0
        assert np.abs(gy[design.cell_fixed]).max() == 0.0

    def test_tns_wns_with_grad_consistency(self, env):
        design, x, y, forest = env
        timer = DifferentiableTimer(design)
        tns, wns, gx, gy, tape = timer.tns_wns_with_grad(x, y, forest)
        assert tns == pytest.approx(tape.tns)
        assert wns == pytest.approx(tape.wns)


class TestGradientDirection:
    def test_chain_gradient_pulls_cells_toward_shorter_wires(self):
        """On a stretched chain, increasing TNS means compressing the path.

        Gradient-descent direction is -grad(objective) with objective
        -TNS; equivalently cells should move along +d(TNS)/dx steps.
        Moving the middle cell slightly along the positive gradient of TNS
        must not reduce TNS.
        """
        design = make_chain_design(4, clock_period=80.0, die=(0, 0, 200, 20))
        x = design.cell_x.copy()
        y = design.cell_y.copy()
        # Stretch: move middle gates far away vertically.
        gi = design.cell_index("g1")
        y[gi] += 80.0
        forest = build_forest(design, x, y)
        timer = DifferentiableTimer(design, gamma=5.0)
        tape0 = timer.forward(x, y, forest)
        gx, gy = timer.backward(tape0, d_tns=1.0)
        assert gy[gi] != 0.0
        step = 0.5
        x2 = x + step * np.sign(gx) * (np.abs(gx) > 1e-12)
        y2 = y + step * np.sign(gy) * (np.abs(gy) > 1e-12)
        tape1 = timer.forward(x2, y2, forest)
        assert tape1.tns >= tape0.tns

    def test_gradient_descent_step_improves_smoothed_tns(self, env):
        design, x, y, forest = env
        timer = DifferentiableTimer(design, gamma=15.0)
        tape0 = timer.forward(x, y, forest)
        gx, gy = timer.backward(tape0, d_tns=1.0)
        norm = np.abs(gx).max() + np.abs(gy).max()
        step = 0.2 / max(norm, 1e-12)
        tape1 = timer.forward(x + step * gx, y + step * gy, forest)
        assert tape1.tns > tape0.tns


class TestZeroEndpointDesign:
    """A design with no setup checks and no output ports (satellite fix:
    the empty-endpoint reduction used to raise in ``lse_min``)."""

    @pytest.fixture(scope="class")
    def no_endpoint_design(self, library):
        from repro.netlist import DesignBuilder

        b = DesignBuilder("noend", library, die=(0.0, 0.0, 60.0, 20.0))
        b.add_input("clk", x=0.0, y=0.0)
        b.add_input("a", x=0.0, y=10.0)
        b.add_cell("u1", "INV_X1", x=20.0, y=10.0)
        b.add_cell("u2", "INV_X1", x=40.0, y=10.0)
        b.add_net("n0", ["a", "u1/A"])
        b.add_net("n1", ["u1/Y", "u2/A"])
        return b.build()

    def test_forward_is_trivially_met(self, no_endpoint_design):
        timer = DifferentiableTimer(no_endpoint_design)
        assert timer.graph.n_endpoints == 0
        tape = timer.forward()
        assert tape.tns == 0.0
        assert tape.wns == 0.0
        assert tape.ep_slack.size == 0

    @pytest.mark.parametrize(
        "d_tns,d_wns", [(1.0, 0.0), (0.0, 1.0), (0.5, 0.5)]
    )
    def test_backward_returns_zero_gradients(
        self, no_endpoint_design, d_tns, d_wns
    ):
        timer = DifferentiableTimer(no_endpoint_design)
        tape = timer.forward()
        gx, gy = timer.backward(tape, d_tns=d_tns, d_wns=d_wns)
        assert gx.shape == (no_endpoint_design.n_cells,)
        assert np.abs(gx).max() == 0.0
        assert np.abs(gy).max() == 0.0

    def test_gradcheck_passes(self, no_endpoint_design):
        from repro.core import check_gradient

        design = no_endpoint_design
        timer = DifferentiableTimer(design)
        forest = build_forest(design, design.cell_x, design.cell_y)
        tape = timer.forward(design.cell_x, design.cell_y, forest)
        gx, _ = timer.backward(tape)

        def fn(xx):
            return timer.forward(xx, design.cell_y, forest).tns

        report = check_gradient(fn, gx, design.cell_x.astype(float))
        assert report.ok


class TestSlewClipBoundary:
    """Setup-check slews are clipped before the LUT query; where the clip
    is active the recorded slew-derivative must vanish so the backward
    pass matches finite differences of the clipped forward (satellite
    fix: it used to apply ``setup_dsetup_dslew`` unconditionally)."""

    def _clip_between_slews(self, tape, graph):
        """A clip bound in the widest gap of the setup slews, so no pin
        sits near the boundary and central differences stay one-sided."""
        slews = np.sort(np.unique(tape.slew[graph.setup_d].reshape(-1)))
        assert len(slews) >= 2
        gaps = np.diff(slews)
        k = int(np.argmax(gaps))
        return float(0.5 * (slews[k] + slews[k + 1]))

    def test_clipped_slew_grad_is_zeroed(self, env, monkeypatch):
        from repro.core import difftimer as difftimer_mod

        design, x, y, forest = env
        timer = DifferentiableTimer(design, gamma=15.0)
        clip = self._clip_between_slews(
            timer.forward(x, y, forest), timer.graph
        )
        monkeypatch.setattr(difftimer_mod, "SLEW_CLIP_MAX", clip)
        tape = timer.forward(x, y, forest)
        clipped = tape.slew[timer.graph.setup_d] > clip
        assert np.any(clipped)  # the boundary is actually exercised
        assert np.all(tape.setup_dsetup_dslew[clipped] == 0.0)
        assert np.any(tape.setup_dsetup_dslew[~clipped] != 0.0)

    def test_gradient_matches_fd_at_clip_boundary(self, env, monkeypatch):
        from repro.core import check_gradient
        from repro.core import difftimer as difftimer_mod

        design, x, y, forest = env
        timer = DifferentiableTimer(design, gamma=15.0)
        clip = self._clip_between_slews(
            timer.forward(x, y, forest), timer.graph
        )
        monkeypatch.setattr(difftimer_mod, "SLEW_CLIP_MAX", clip)
        tape = timer.forward(x, y, forest)
        gx, gy = timer.backward(tape)

        n = design.n_cells

        def fn(z):
            return timer.forward(z[:n], z[n:], forest).tns

        movable = np.nonzero(~design.cell_fixed)[0]
        strong = movable[np.argsort(-np.abs(gx[movable]))[:6]]
        rng = np.random.default_rng(17)
        probes = np.unique(
            np.concatenate([strong, rng.choice(movable, 8), n + strong])
        )
        report = check_gradient(
            fn,
            np.concatenate([gx, gy]),
            np.concatenate([x, y]),
            indices=probes,
            eps=1e-4,
            rtol=2e-3,
        )
        assert report.ok, str(report)
